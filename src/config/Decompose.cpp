//===- config/Decompose.cpp - Message-graph config decomposition ----------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "config/Decompose.h"

#include "support/MathExtras.h"

#include <algorithm>
#include <limits>

using namespace swa;
using namespace swa::cfg;

namespace {

/// Truncates \p P's windows to the block [0, LSub) when the pattern is
/// LSub-periodic over [0, LGlobal) with no block-straddling window.
/// Returns false when it is not (the component cannot be decomposed).
bool truncateWindows(Partition &P, int64_t LSub, int64_t LGlobal) {
  if (LSub == LGlobal)
    return true;
  int64_t Blocks = LGlobal / LSub;
  std::vector<std::vector<Window>> Pattern(static_cast<size_t>(Blocks));
  for (const Window &W : P.Windows) {
    if (W.Start < 0 || W.End <= W.Start || W.End > LGlobal)
      return false;
    int64_t B = W.Start / LSub;
    if (B >= Blocks || W.End > (B + 1) * LSub)
      return false; // straddles a block boundary
    Pattern[static_cast<size_t>(B)].push_back(
        {W.Start - B * LSub, W.End - B * LSub});
  }
  auto ByStart = [](const Window &A, const Window &B) {
    return A.Start != B.Start ? A.Start < B.Start : A.End < B.End;
  };
  for (auto &Blk : Pattern)
    std::sort(Blk.begin(), Blk.end(), ByStart);
  for (size_t B = 1; B < Pattern.size(); ++B) {
    if (Pattern[B].size() != Pattern[0].size())
      return false;
    for (size_t I = 0; I < Pattern[B].size(); ++I)
      if (Pattern[B][I].Start != Pattern[0][I].Start ||
          Pattern[B][I].End != Pattern[0][I].End)
        return false;
  }
  P.Windows = Pattern.empty() ? std::vector<Window>{} : Pattern[0];
  return true;
}

/// Numbers components by first appearance scanning partitions by index
/// and fills CompOfPart/CompOfCore. Assumes every partition is bound
/// (checked by the callers before any unite).
void numberComponents(const Config &Config, support::UnionFind &UF,
                      ComponentStructure &S) {
  const size_t NP = Config.Partitions.size();
  const size_t NC = Config.Cores.size();
  S.CompOfPart.assign(NP, -1);
  S.CompOfCore.assign(NC, -1);
  std::vector<int32_t> CompOfRoot(NC, -1);
  S.NumComps = 0;
  for (size_t P = 0; P < NP; ++P) {
    int32_t Core = Config.Partitions[P].Core;
    int32_t R = UF.find(Core);
    if (CompOfRoot[static_cast<size_t>(R)] < 0)
      CompOfRoot[static_cast<size_t>(R)] = S.NumComps++;
    S.CompOfPart[P] = CompOfRoot[static_cast<size_t>(R)];
    S.CompOfCore[static_cast<size_t>(Core)] = S.CompOfPart[P];
  }
  S.Valid = true;
}

bool allPartitionsBound(const Config &Config) {
  const size_t NC = Config.Cores.size();
  for (const Partition &P : Config.Partitions)
    if (P.Core < 0 || static_cast<size_t>(P.Core) >= NC)
      return false;
  return true;
}

} // namespace

MessageGroups cfg::messageGroups(const Config &Config) {
  MessageGroups G;
  const size_t NP = Config.Partitions.size();
  support::UnionFind UF(NP);
  for (const Message &M : Config.Messages) {
    if (M.Sender.Partition < 0 ||
        static_cast<size_t>(M.Sender.Partition) >= NP ||
        M.Receiver.Partition < 0 ||
        static_cast<size_t>(M.Receiver.Partition) >= NP)
      return G; // dangling message ref: leave it to validate()
    UF.unite(M.Sender.Partition, M.Receiver.Partition);
  }
  G.GroupOfPart.assign(NP, -1);
  std::vector<int32_t> GroupOfRoot(NP, -1);
  for (size_t P = 0; P < NP; ++P) {
    int32_t R = UF.find(static_cast<int32_t>(P));
    if (GroupOfRoot[static_cast<size_t>(R)] < 0)
      GroupOfRoot[static_cast<size_t>(R)] = G.NumGroups++;
    G.GroupOfPart[P] = GroupOfRoot[static_cast<size_t>(R)];
  }
  G.Valid = true;
  return G;
}

ComponentStructure cfg::componentStructure(const Config &Config,
                                           support::UnionFind &UF) {
  ComponentStructure S;
  const size_t NP = Config.Partitions.size();
  const size_t NC = Config.Cores.size();
  if (NP == 0 || NC == 0 || UF.size() != NC || !allPartitionsBound(Config))
    return S;
  UF.reset();
  for (const Message &M : Config.Messages) {
    if (M.Sender.Partition < 0 ||
        static_cast<size_t>(M.Sender.Partition) >= NP ||
        M.Receiver.Partition < 0 ||
        static_cast<size_t>(M.Receiver.Partition) >= NP)
      return S; // dangling message ref
    UF.unite(Config.Partitions[static_cast<size_t>(M.Sender.Partition)].Core,
             Config.Partitions[static_cast<size_t>(M.Receiver.Partition)].Core);
  }
  numberComponents(Config, UF, S);
  return S;
}

ComponentStructure
cfg::componentStructureFromGroups(const Config &Config,
                                  const MessageGroups &G,
                                  support::UnionFind &UF) {
  ComponentStructure S;
  const size_t NP = Config.Partitions.size();
  const size_t NC = Config.Cores.size();
  if (NP == 0 || NC == 0 || !G.Valid || G.GroupOfPart.size() != NP ||
      UF.size() != NC || !allPartitionsBound(Config))
    return S;
  UF.reset();
  // One unite per partition: cores sharing a partition group are one
  // component. Transitivity through the group representative reproduces
  // exactly the message-edge unions of componentStructure().
  std::vector<int32_t> FirstCoreOfGroup(static_cast<size_t>(G.NumGroups), -1);
  for (size_t P = 0; P < NP; ++P) {
    int32_t Core = Config.Partitions[P].Core;
    int32_t &First =
        FirstCoreOfGroup[static_cast<size_t>(G.GroupOfPart[P])];
    if (First < 0)
      First = Core;
    else
      UF.unite(First, Core);
  }
  numberComponents(Config, UF, S);
  return S;
}

bool cfg::materializeComponent(const Config &Config,
                               const ComponentStructure &S, int32_t Comp,
                               int64_t LGlobal, Component &Out) {
  Out.Sub = swa::cfg::Config();
  Out.GidMap.clear();
  const size_t NP = Config.Partitions.size();
  const size_t NC = Config.Cores.size();
  std::vector<int32_t> CoreMap(NC, -1); // original core -> sub core
  std::vector<int32_t> PartMap(NP, -1); // original part -> sub part
  int32_t GidBase = 0;
  for (size_t P = 0; P < NP; ++P) {
    int32_t NT = static_cast<int32_t>(Config.Partitions[P].Tasks.size());
    if (S.CompOfPart[P] != Comp) {
      GidBase += NT;
      continue;
    }
    int32_t OrigCore = Config.Partitions[P].Core;
    if (CoreMap[static_cast<size_t>(OrigCore)] < 0) {
      CoreMap[static_cast<size_t>(OrigCore)] =
          static_cast<int32_t>(Out.Sub.Cores.size());
      Out.Sub.Cores.push_back(Config.Cores[static_cast<size_t>(OrigCore)]);
    }
    PartMap[P] = static_cast<int32_t>(Out.Sub.Partitions.size());
    Out.Sub.Partitions.push_back(Config.Partitions[P]);
    Out.Sub.Partitions.back().Core = CoreMap[static_cast<size_t>(OrigCore)];
    for (int32_t T = 0; T < NT; ++T)
      Out.GidMap.push_back(GidBase + T);
    GidBase += NT;
  }

  for (const Message &M : Config.Messages) {
    if (S.CompOfPart[static_cast<size_t>(M.Sender.Partition)] != Comp)
      continue;
    Message Sub = M;
    Sub.Sender.Partition = PartMap[static_cast<size_t>(M.Sender.Partition)];
    Sub.Receiver.Partition =
        PartMap[static_cast<size_t>(M.Receiver.Partition)];
    Out.Sub.Messages.push_back(Sub);
  }

  Out.Sub.Name = Config.Name + "/c" + std::to_string(Comp);
  Out.Sub.NumCoreTypes = Config.NumCoreTypes;
  int64_t LSub = Out.Sub.hyperperiod();
  if (LSub <= 0 || LGlobal % LSub != 0)
    return false; // no tasks, or inconsistent periods
  for (Partition &P : Out.Sub.Partitions)
    if (!truncateWindows(P, LSub, LGlobal))
      return false; // window pattern not LSub-periodic
  return true;
}

Decomposition cfg::decomposeConfig(const Config &Config) {
  Decomposition Out;
  const size_t NC = Config.Cores.size();
  if (Config.Partitions.empty() || NC == 0)
    return Out;

  support::UnionFind UF(NC);
  ComponentStructure S = componentStructure(Config, UF);
  if (!S.Valid || S.NumComps < 2)
    return Out;

  int64_t LGlobal = Config.hyperperiod();
  if (LGlobal <= 0 || LGlobal == std::numeric_limits<int64_t>::max())
    return Out;

  Out.Components.resize(static_cast<size_t>(S.NumComps));
  for (int32_t K = 0; K < S.NumComps; ++K)
    if (!materializeComponent(Config, S, K, LGlobal,
                              Out.Components[static_cast<size_t>(K)]))
      return Decomposition{};

  Out.Decomposed = true;
  Out.Horizon = LGlobal;
  return Out;
}
