//===- config/Decompose.cpp - Message-graph config decomposition ----------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "config/Decompose.h"

#include "support/MathExtras.h"
#include "support/UnionFind.h"

#include <algorithm>
#include <limits>

using namespace swa;
using namespace swa::cfg;

namespace {

/// Truncates \p P's windows to the block [0, LSub) when the pattern is
/// LSub-periodic over [0, LGlobal) with no block-straddling window.
/// Returns false when it is not (the component cannot be decomposed).
bool truncateWindows(Partition &P, int64_t LSub, int64_t LGlobal) {
  if (LSub == LGlobal)
    return true;
  int64_t Blocks = LGlobal / LSub;
  std::vector<std::vector<Window>> Pattern(static_cast<size_t>(Blocks));
  for (const Window &W : P.Windows) {
    if (W.Start < 0 || W.End <= W.Start || W.End > LGlobal)
      return false;
    int64_t B = W.Start / LSub;
    if (B >= Blocks || W.End > (B + 1) * LSub)
      return false; // straddles a block boundary
    Pattern[static_cast<size_t>(B)].push_back(
        {W.Start - B * LSub, W.End - B * LSub});
  }
  auto ByStart = [](const Window &A, const Window &B) {
    return A.Start != B.Start ? A.Start < B.Start : A.End < B.End;
  };
  for (auto &Blk : Pattern)
    std::sort(Blk.begin(), Blk.end(), ByStart);
  for (size_t B = 1; B < Pattern.size(); ++B) {
    if (Pattern[B].size() != Pattern[0].size())
      return false;
    for (size_t I = 0; I < Pattern[B].size(); ++I)
      if (Pattern[B][I].Start != Pattern[0][I].Start ||
          Pattern[B][I].End != Pattern[0][I].End)
        return false;
  }
  P.Windows = Pattern.empty() ? std::vector<Window>{} : Pattern[0];
  return true;
}

} // namespace

Decomposition cfg::decomposeConfig(const Config &Config) {
  Decomposition Out;
  const size_t NP = Config.Partitions.size();
  const size_t NC = Config.Cores.size();
  if (NP == 0 || NC == 0)
    return Out;
  for (const Partition &P : Config.Partitions)
    if (P.Core < 0 || static_cast<size_t>(P.Core) >= NC)
      return Out; // unbound or dangling binding: not decomposable

  support::UnionFind UF(NC);
  for (const Message &M : Config.Messages) {
    if (M.Sender.Partition < 0 ||
        static_cast<size_t>(M.Sender.Partition) >= NP ||
        M.Receiver.Partition < 0 ||
        static_cast<size_t>(M.Receiver.Partition) >= NP)
      return Out; // dangling message ref: leave it to validate()
    UF.unite(Config.Partitions[static_cast<size_t>(M.Sender.Partition)].Core,
             Config.Partitions[static_cast<size_t>(M.Receiver.Partition)].Core);
  }

  // Group used cores by component root; component order = order of first
  // appearance scanning partitions by index, so task gids stay aligned
  // with the original numbering as far as possible (deterministic either
  // way).
  std::vector<int32_t> RootOf(NC, -1);
  std::vector<int32_t> CompOfRoot(NC, -1);
  int NumComps = 0;
  std::vector<int32_t> CompOfPart(NP, -1);
  for (size_t P = 0; P < NP; ++P) {
    int32_t R = UF.find(Config.Partitions[P].Core);
    if (CompOfRoot[static_cast<size_t>(R)] < 0)
      CompOfRoot[static_cast<size_t>(R)] = NumComps++;
    CompOfPart[P] = CompOfRoot[static_cast<size_t>(R)];
  }
  if (NumComps < 2)
    return Out;

  int64_t LGlobal = Config.hyperperiod();
  if (LGlobal <= 0 || LGlobal == std::numeric_limits<int64_t>::max())
    return Out;

  // Original gid offsets per partition.
  std::vector<int32_t> GidBase(NP, 0);
  for (size_t P = 1; P < NP; ++P)
    GidBase[P] = GidBase[P - 1] +
                 static_cast<int32_t>(Config.Partitions[P - 1].Tasks.size());

  Out.Components.resize(static_cast<size_t>(NumComps));
  std::vector<int32_t> CoreMap(NC, -1); // original core -> sub core
  std::vector<int32_t> PartMap(NP, -1); // original part -> sub part

  for (size_t P = 0; P < NP; ++P) {
    Component &CP = Out.Components[static_cast<size_t>(CompOfPart[P])];
    int32_t OrigCore = Config.Partitions[P].Core;
    if (CoreMap[static_cast<size_t>(OrigCore)] < 0) {
      CoreMap[static_cast<size_t>(OrigCore)] =
          static_cast<int32_t>(CP.Sub.Cores.size());
      CP.Sub.Cores.push_back(Config.Cores[static_cast<size_t>(OrigCore)]);
    }
    PartMap[P] = static_cast<int32_t>(CP.Sub.Partitions.size());
    CP.Sub.Partitions.push_back(Config.Partitions[P]);
    CP.Sub.Partitions.back().Core = CoreMap[static_cast<size_t>(OrigCore)];
    for (size_t T = 0; T < Config.Partitions[P].Tasks.size(); ++T)
      CP.GidMap.push_back(GidBase[P] + static_cast<int32_t>(T));
  }

  for (const Message &M : Config.Messages) {
    Component &CP =
        Out.Components[static_cast<size_t>(
            CompOfPart[static_cast<size_t>(M.Sender.Partition)])];
    Message Sub = M;
    Sub.Sender.Partition = PartMap[static_cast<size_t>(M.Sender.Partition)];
    Sub.Receiver.Partition =
        PartMap[static_cast<size_t>(M.Receiver.Partition)];
    CP.Sub.Messages.push_back(Sub);
  }

  for (size_t K = 0; K < Out.Components.size(); ++K) {
    Component &CP = Out.Components[K];
    CP.Sub.Name = Config.Name + "/c" + std::to_string(K);
    CP.Sub.NumCoreTypes = Config.NumCoreTypes;
    int64_t LSub = CP.Sub.hyperperiod();
    if (LSub <= 0 || LGlobal % LSub != 0)
      return Decomposition{}; // no tasks, or inconsistent periods
    for (Partition &P : CP.Sub.Partitions)
      if (!truncateWindows(P, LSub, LGlobal))
        return Decomposition{}; // window pattern not LSub-periodic
  }

  Out.Decomposed = true;
  Out.Horizon = LGlobal;
  return Out;
}
