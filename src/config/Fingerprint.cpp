//===- config/Fingerprint.cpp - Canonical structural config hash ----------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "config/Fingerprint.h"

#include <vector>

using namespace swa;
using namespace swa::cfg;

namespace {

// splitmix64 finalizer: full-avalanche 64-bit mixer.
uint64_t mix64(uint64_t Z) {
  Z += 0x9e3779b97f4a7c15ULL;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

/// Streaming 128-bit accumulator: two independently keyed 64-bit lanes,
/// each fully mixed per ingested word, so field order matters and a
/// one-word change avalanches through everything that follows.
struct Hash128 {
  uint64_t A = 0x243f6a8885a308d3ULL;
  uint64_t B = 0x13198a2e03707344ULL;

  void add(uint64_t V) {
    A = mix64(A ^ V);
    B = mix64(B + (V ^ 0xa5a5a5a5a5a5a5a5ULL));
  }
  void add(int64_t V) { add(static_cast<uint64_t>(V)); }
  void add(int V) { add(static_cast<uint64_t>(static_cast<int64_t>(V))); }
};

} // namespace

Fingerprint cfg::fingerprintConfig(const Config &Config,
                                   bool CanonicalizeCores) {
  Hash128 H;
  H.add(uint64_t{0x5357412d464e4750ULL}); // "SWA-FNGP" domain tag
  H.add(Config.NumCoreTypes);
  H.add(static_cast<uint64_t>(Config.Partitions.size()));

  // Canonical core renaming: within each (Module, CoreType) class, cores
  // get ranks in order of first use scanning partitions by index. Two
  // bindings differing only by a permutation of same-class cores produce
  // identical (Module, CoreType, Rank) triples. Unused cores never reach
  // the built model and are excluded entirely.
  std::vector<int> CanonRank(Config.Cores.size(), -1);
  {
    // Per-class next-rank counters, keyed densely by Module/CoreType pairs
    // seen so far (configs have a handful of classes; linear scan is fine).
    std::vector<std::pair<std::pair<int, int>, int>> ClassNext;
    for (const Partition &P : Config.Partitions) {
      if (P.Core < 0 || static_cast<size_t>(P.Core) >= Config.Cores.size())
        continue;
      if (CanonRank[static_cast<size_t>(P.Core)] >= 0)
        continue;
      const Core &C = Config.Cores[static_cast<size_t>(P.Core)];
      std::pair<int, int> Key{C.Module, C.CoreType};
      int Rank = 0;
      bool Found = false;
      for (auto &E : ClassNext)
        if (E.first == Key) {
          Rank = E.second++;
          Found = true;
          break;
        }
      if (!Found)
        ClassNext.push_back({Key, 1});
      CanonRank[static_cast<size_t>(P.Core)] = Rank;
    }
  }

  for (const Partition &P : Config.Partitions) {
    H.add(static_cast<int>(P.Scheduler));
    if (P.Core >= 0 && static_cast<size_t>(P.Core) < Config.Cores.size()) {
      const Core &C = Config.Cores[static_cast<size_t>(P.Core)];
      H.add(C.Module);
      H.add(C.CoreType);
      H.add(CanonicalizeCores ? CanonRank[static_cast<size_t>(P.Core)]
                              : P.Core);
    } else {
      H.add(uint64_t{0xffffffffffffffffULL}); // unbound sentinel
    }
    H.add(static_cast<uint64_t>(P.Tasks.size()));
    for (const Task &T : P.Tasks) {
      H.add(T.Priority);
      H.add(T.Period);
      H.add(T.Deadline);
      H.add(static_cast<uint64_t>(T.Wcet.size()));
      for (TimeValue W : T.Wcet)
        H.add(W);
    }
    H.add(static_cast<uint64_t>(P.Windows.size()));
    for (const Window &W : P.Windows) {
      H.add(W.Start);
      H.add(W.End);
    }
  }

  H.add(static_cast<uint64_t>(Config.Messages.size()));
  for (const Message &M : Config.Messages) {
    H.add(M.Sender.Partition);
    H.add(M.Sender.Task);
    H.add(M.Receiver.Partition);
    H.add(M.Receiver.Task);
    H.add(M.MemDelay);
    H.add(M.NetDelay);
  }

  return {H.A, H.B};
}

Fingerprint cfg::fingerprintComponent(const Config &Sub, int64_t Horizon,
                                      bool CanonicalizeCores) {
  Fingerprint F = fingerprintConfig(Sub, CanonicalizeCores);
  // A component simulated at its own hyperperiod is indistinguishable
  // from the standalone config — keep the fingerprints equal so whole-
  // config and component cache entries agree by construction. Only an
  // extended horizon (carried-over backlog is observed further) changes
  // the verdict and must change the key.
  if (Horizon == Sub.hyperperiod())
    return F;
  Hash128 H;
  H.A = F.Hi;
  H.B = F.Lo;
  H.add(uint64_t{0x5357412d48525a4eULL}); // "SWA-HRZN" domain tag
  H.add(Horizon);
  return {H.A, H.B};
}

Fingerprint cfg::fingerprintShape(const Config &Config) {
  Hash128 H;
  H.add(uint64_t{0x5357412d53484150ULL}); // "SWA-SHAP" domain tag
  H.add(Config.NumCoreTypes);
  H.add(static_cast<uint64_t>(Config.Partitions.size()));

  for (const Partition &P : Config.Partitions) {
    H.add(static_cast<int>(P.Scheduler));
    if (P.Core >= 0 && static_cast<size_t>(P.Core) < Config.Cores.size()) {
      const Core &C = Config.Cores[static_cast<size_t>(P.Core)];
      H.add(C.Module);
      H.add(C.CoreType);
      // Raw index, never the canonical rank: the instance layout (one
      // CoreScheduler automaton per used core, in core-index order)
      // depends on the actual indices, and the rebinder patches slots by
      // that layout.
      H.add(P.Core);
    } else {
      H.add(uint64_t{0xffffffffffffffffULL}); // unbound sentinel
    }
    H.add(static_cast<uint64_t>(P.Tasks.size()));
    for (const Task &T : P.Tasks) {
      H.add(T.Priority);
      H.add(T.Period);
      H.add(T.Deadline);
      H.add(static_cast<uint64_t>(T.Wcet.size()));
      for (TimeValue W : T.Wcet)
        H.add(W);
    }
    // Window *count* only: the positions live in patchable const arrays,
    // but the count is folded into compiled guards (nw) and sizes the
    // tables.
    H.add(static_cast<uint64_t>(P.Windows.size()));
  }

  H.add(static_cast<uint64_t>(Config.Messages.size()));
  for (const Message &M : Config.Messages) {
    H.add(M.Sender.Partition);
    H.add(M.Sender.Task);
    H.add(M.Receiver.Partition);
    H.add(M.Receiver.Task);
    H.add(M.MemDelay);
    H.add(M.NetDelay);
  }

  return {H.A, H.B};
}
