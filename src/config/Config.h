//===- config/Config.h - Modular system configurations ----------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The system configuration model of §2.1 of the paper:
///
///   conf = <HW, WL, Bind, Sched>
///
///  * HW: processing cores, each with a type (performance class) and a
///    module (cabinet) — inter-module messages travel over the network,
///    intra-module ones through memory;
///  * WL: partitions, each a set of tasks (priority, per-core-type WCET,
///    period, deadline) plus a scheduling algorithm, and the data-flow
///    graph of messages between same-period tasks;
///  * Bind: partition-to-core mapping;
///  * Sched: per-partition execution windows within the scheduling period
///    L = lcm of all task periods (the hyperperiod).
///
/// All times are integer ticks (the unit is the configurator's choice,
/// e.g. 100 us). Higher Priority values mean more urgent tasks.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_CONFIG_CONFIG_H
#define SWA_CONFIG_CONFIG_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace swa {
namespace cfg {

using TimeValue = int64_t;

/// One processing core of a hardware module.
struct Core {
  std::string Name;
  int Module = 0;   ///< Module (cabinet) id.
  int CoreType = 0; ///< Index into the core-type space [0, NumCoreTypes).
};

/// One task of a partition.
struct Task {
  std::string Name;
  int Priority = 0;              ///< Larger value = higher priority.
  std::vector<TimeValue> Wcet;   ///< Per core type; size == NumCoreTypes.
  TimeValue Period = 0;
  TimeValue Deadline = 0;        ///< Relative; 0 < Deadline <= Period.
};

enum class SchedulerKind {
  FPPS,  ///< Fixed-priority preemptive.
  FPNPS, ///< Fixed-priority non-preemptive (windows still preempt).
  EDF,   ///< Earliest-deadline-first, preemptive.
};

const char *schedulerKindName(SchedulerKind K);

/// A partition execution window [Start, End) within the hyperperiod.
struct Window {
  TimeValue Start = 0;
  TimeValue End = 0;
};

struct Partition {
  std::string Name;
  SchedulerKind Scheduler = SchedulerKind::FPPS;
  std::vector<Task> Tasks;
  int Core = -1; ///< Bind: index into Config::Cores.
  std::vector<Window> Windows;
};

/// Reference to a task by (partition index, task index).
struct TaskRef {
  int Partition = -1;
  int Task = -1;

  bool operator==(const TaskRef &O) const {
    return Partition == O.Partition && Task == O.Task;
  }
};

/// A message of the data-flow graph (one virtual link delivery).
struct Message {
  TaskRef Sender;
  TaskRef Receiver;
  TimeValue MemDelay = 0; ///< Worst case through shared memory.
  TimeValue NetDelay = 0; ///< Worst case through the switched network.
};

/// How strictly Config::validate checks the binding layer.
enum class ValidationPolicy {
  /// Every partition must be bound to a valid core (the simulation and
  /// analysis paths require this).
  Strict,
  /// Partitions may be unbound (Core == -1): the shape of a search-input
  /// Base configuration whose bindings and windows the scheduling tool
  /// will choose. Everything else is still checked.
  AllowUnbound,
};

class Config {
public:
  std::string Name;
  int NumCoreTypes = 1;
  std::vector<Core> Cores;
  std::vector<Partition> Partitions;
  std::vector<Message> Messages;

  /// L: the least common multiple of all task periods. Saturates at int64
  /// max if the lcm overflows — validate() rejects such configurations, so
  /// downstream code only ever sees real hyperperiods.
  TimeValue hyperperiod() const;

  /// Checked variant: an overflowing hyperperiod is a structured Error
  /// naming the offending period, in every build mode.
  Result<TimeValue> checkedHyperperiod() const;

  /// Total number of jobs in one hyperperiod (sum over tasks of L/P).
  /// Saturates on overflow, like hyperperiod().
  int64_t jobCount() const;

  /// Checked variant of jobCount().
  Result<int64_t> checkedJobCount() const;

  /// Total number of tasks.
  int numTasks() const;

  /// Flat task numbering: partitions in order, tasks within each.
  int globalTaskId(const TaskRef &Ref) const;
  TaskRef taskRefOf(int GlobalId) const;
  const Task &taskOf(const TaskRef &Ref) const;

  /// The WCET of a task on the core its partition is bound to.
  TimeValue boundWcet(const TaskRef &Ref) const;

  /// Worst-case delay of a message given the current binding: MemDelay for
  /// intra-module communication, NetDelay across modules.
  TimeValue effectiveDelay(const Message &M) const;

  /// Processor demand of a partition within one hyperperiod divided by L.
  double partitionUtilization(int Partition) const;

  /// Fraction of the hyperperiod covered by the partition's windows.
  double windowShare(int Partition) const;

  /// Structural validation; returns the first problem found. An
  /// overflowing hyperperiod is rejected here (with a message naming the
  /// offending periods), so every accepted configuration has a real L.
  Error validate(ValidationPolicy Policy = ValidationPolicy::Strict) const;
};

} // namespace cfg
} // namespace swa

#endif // SWA_CONFIG_CONFIG_H
