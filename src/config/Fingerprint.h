//===- config/Fingerprint.h - Canonical structural config hash --*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A 128-bit structural fingerprint of a cfg::Config, used as the key of
/// the config-search verdict cache (schedtool::ConfigSearch). Two configs
/// with equal fingerprints are schedulability-equivalent by construction:
/// the hash covers exactly the inputs of core::buildModel that influence
/// the NSA — scheduler kinds, task parameters (priority, period, deadline,
/// the full per-core-type WCET vector), windows, message graph and delays,
/// and the *canonicalized* partition-to-core binding.
///
/// Canonicalization: cores of the same (Module, CoreType) are
/// interchangeable — relabeling them permutes nothing observable, because
/// every task automaton's parameters (WCET via the core type, message
/// delays via the module) and every CoreScheduler's window table are fixed
/// by the class, not the index. The fingerprint therefore renames cores
/// within each (Module, CoreType) class by first use in partition order,
/// so two symmetric bindings fold to one cache entry (counted as a
/// symmetry fold by the search).
///
/// Names (config, core, partition, task) are deliberately excluded: they
/// never reach the engine's semantics.
///
/// Stability: since PR 9 fingerprints are also *persisted* cache keys —
/// schedtool::Snapshot serializes VerdictCache entries under their
/// canonical fingerprints, and a resumed or warm-started search trusts a
/// loaded entry's verdict for any config that hashes to the same key.
/// Any change to the hashed field set, the mixing function, or the
/// canonicalization order therefore MUST bump Snapshot::FormatVersion
/// (schedtool/Snapshot.h): an old snapshot read under a new hash would
/// silently miss (harmless) or, worse, collide (wrong verdict). The
/// version check turns that into a typed SnapshotVersionSkew rejection
/// and a cold start.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_CONFIG_FINGERPRINT_H
#define SWA_CONFIG_FINGERPRINT_H

#include "config/Config.h"

#include <cstdint>
#include <functional>

namespace swa {
namespace cfg {

/// 128-bit hash value. Collisions are astronomically unlikely for the
/// candidate counts a search visits (< 2^30), which is the usual
/// fingerprint trade-off; the differential tests re-evaluate from scratch
/// and never trust the cache.
struct Fingerprint {
  uint64_t Hi = 0;
  uint64_t Lo = 0;

  bool operator==(const Fingerprint &O) const {
    return Hi == O.Hi && Lo == O.Lo;
  }
  bool operator!=(const Fingerprint &O) const { return !(*this == O); }
};

/// Hash functor for unordered containers keyed by Fingerprint.
struct FingerprintHash {
  size_t operator()(const Fingerprint &F) const {
    // The halves are already well mixed; fold them.
    return static_cast<size_t>(F.Hi ^ (F.Lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// Computes the canonical structural fingerprint of \p Config. Symmetric
/// core relabelings (same Module and CoreType) hash identically; any
/// semantically visible difference — a binding to a different core class,
/// a window edge, a task parameter, a message delay — changes the value.
///
/// With \p CanonicalizeCores false the actual core indices are hashed
/// instead of the canonical ranks: two symmetric bindings then hash
/// *differently*. The search stores this raw value next to each cache
/// entry to tell symmetry folds apart from plain revisits.
Fingerprint fingerprintConfig(const Config &Config,
                              bool CanonicalizeCores = true);

/// Fingerprints one decomposition component for the component-level
/// verdict cache. A component is simulated to the *global* hyperperiod
/// (Decomposition::Horizon), so its verdict depends on (Sub, Horizon),
/// not on Sub alone. When \p Horizon equals Sub's own hyperperiod the
/// result is exactly fingerprintConfig(Sub) — a component that happens to
/// cover the whole hyperperiod hashes like the standalone config it is;
/// otherwise the horizon is folded in and the value diverges.
Fingerprint fingerprintComponent(const Config &Sub, int64_t Horizon,
                                 bool CanonicalizeCores = true);

/// Structural *shape* of a config as seen by core::buildModel's compiled
/// output: everything fingerprintConfig covers except the window
/// positions, with raw (uncanonicalized) core indices, plus each
/// partition's window count. Two configs with equal shapes compile to
/// networks that differ only in the CoreScheduler window tables
/// (w_start/w_end/w_part const arrays and the Config copy) — exactly
/// what core::WindowRebinder can patch in place, so this is the arena
/// key for NSA instance reuse.
Fingerprint fingerprintShape(const Config &Config);

} // namespace cfg
} // namespace swa

#endif // SWA_CONFIG_FINGERPRINT_H
