//===- config/Config.cpp - Modular system configurations -------------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "config/Config.h"

#include "support/MathExtras.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>

using namespace swa;
using namespace swa::cfg;

const char *swa::cfg::schedulerKindName(SchedulerKind K) {
  switch (K) {
  case SchedulerKind::FPPS:
    return "FPPS";
  case SchedulerKind::FPNPS:
    return "FPNPS";
  case SchedulerKind::EDF:
    return "EDF";
  }
  return "<bad>";
}

TimeValue Config::hyperperiod() const {
  TimeValue L = 1;
  for (const Partition &P : Partitions)
    for (const Task &T : P.Tasks)
      if (T.Period > 0)
        L = lcm64(L, T.Period); // Saturates on overflow; validate() rejects.
  return L;
}

Result<TimeValue> Config::checkedHyperperiod() const {
  TimeValue L = 1;
  for (size_t P = 0; P < Partitions.size(); ++P) {
    const Partition &Part = Partitions[P];
    for (size_t T = 0; T < Part.Tasks.size(); ++T) {
      const Task &Tk = Part.Tasks[T];
      if (Tk.Period <= 0)
        continue;
      Result<int64_t> Next = checkedLcm(L, Tk.Period);
      if (!Next.ok())
        return Error::failure(formatString(
            "hyperperiod overflows int64 folding period %lld of task '%s' "
            "(partition '%s') into accumulated lcm %lld",
            static_cast<long long>(Tk.Period), Tk.Name.c_str(),
            Part.Name.c_str(), static_cast<long long>(L)));
      L = *Next;
    }
  }
  return L;
}

int64_t Config::jobCount() const {
  TimeValue L = hyperperiod();
  int64_t Jobs = 0;
  for (const Partition &P : Partitions)
    for (const Task &T : P.Tasks)
      if (T.Period > 0)
        Jobs = saturatingAdd(Jobs, L / T.Period);
  return Jobs;
}

Result<int64_t> Config::checkedJobCount() const {
  Result<TimeValue> L = checkedHyperperiod();
  if (!L.ok())
    return L.takeError();
  int64_t Jobs = 0;
  for (const Partition &P : Partitions)
    for (const Task &T : P.Tasks) {
      if (T.Period <= 0)
        continue;
      Result<int64_t> Next = checkedAdd(Jobs, *L / T.Period);
      if (!Next.ok())
        return Error::failure("job count overflows int64");
      Jobs = *Next;
    }
  return Jobs;
}

int Config::numTasks() const {
  int N = 0;
  for (const Partition &P : Partitions)
    N += static_cast<int>(P.Tasks.size());
  return N;
}

int Config::globalTaskId(const TaskRef &Ref) const {
  assert(Ref.Partition >= 0 &&
         static_cast<size_t>(Ref.Partition) < Partitions.size() &&
         "bad partition index");
  int Id = 0;
  for (int P = 0; P < Ref.Partition; ++P)
    Id += static_cast<int>(Partitions[static_cast<size_t>(P)].Tasks.size());
  return Id + Ref.Task;
}

TaskRef Config::taskRefOf(int GlobalId) const {
  int Remaining = GlobalId;
  for (size_t P = 0; P < Partitions.size(); ++P) {
    int N = static_cast<int>(Partitions[P].Tasks.size());
    if (Remaining < N)
      return {static_cast<int>(P), Remaining};
    Remaining -= N;
  }
  assert(false && "global task id out of range");
  return {};
}

const Task &Config::taskOf(const TaskRef &Ref) const {
  return Partitions[static_cast<size_t>(Ref.Partition)]
      .Tasks[static_cast<size_t>(Ref.Task)];
}

TimeValue Config::boundWcet(const TaskRef &Ref) const {
  const Partition &P = Partitions[static_cast<size_t>(Ref.Partition)];
  assert(P.Core >= 0 && static_cast<size_t>(P.Core) < Cores.size() &&
         "partition not bound");
  int Type = Cores[static_cast<size_t>(P.Core)].CoreType;
  return taskOf(Ref).Wcet[static_cast<size_t>(Type)];
}

TimeValue Config::effectiveDelay(const Message &M) const {
  const Partition &SP = Partitions[static_cast<size_t>(M.Sender.Partition)];
  const Partition &RP =
      Partitions[static_cast<size_t>(M.Receiver.Partition)];
  assert(SP.Core >= 0 && RP.Core >= 0 && "message between unbound partitions");
  int SMod = Cores[static_cast<size_t>(SP.Core)].Module;
  int RMod = Cores[static_cast<size_t>(RP.Core)].Module;
  return SMod == RMod ? M.MemDelay : M.NetDelay;
}

double Config::partitionUtilization(int Partition) const {
  const cfg::Partition &P = Partitions[static_cast<size_t>(Partition)];
  double U = 0;
  for (size_t T = 0; T < P.Tasks.size(); ++T) {
    TimeValue C = boundWcet({Partition, static_cast<int>(T)});
    U += static_cast<double>(C) /
         static_cast<double>(P.Tasks[T].Period);
  }
  return U;
}

double Config::windowShare(int Partition) const {
  const cfg::Partition &P = Partitions[static_cast<size_t>(Partition)];
  TimeValue Sum = 0;
  for (const Window &W : P.Windows)
    Sum += W.End - W.Start;
  TimeValue L = hyperperiod();
  return L > 0 ? static_cast<double>(Sum) / static_cast<double>(L) : 0.0;
}

Error Config::validate(ValidationPolicy Policy) const {
  auto Fail = [](const std::string &Msg) { return Error::failure(Msg); };

  if (NumCoreTypes <= 0)
    return Fail("configuration must declare at least one core type");
  if (Cores.empty())
    return Fail("configuration has no cores");
  if (Partitions.empty())
    return Fail("configuration has no partitions");

  for (size_t C = 0; C < Cores.size(); ++C) {
    const Core &Co = Cores[C];
    if (Co.CoreType < 0 || Co.CoreType >= NumCoreTypes)
      return Fail(formatString("core %zu has invalid type %d", C,
                               Co.CoreType));
    if (Co.Module < 0)
      return Fail(formatString("core %zu has negative module id", C));
  }

  // Pass 1: per-task structural checks. The hyperperiod fold below assumes
  // positive periods, so those come first.
  for (size_t P = 0; P < Partitions.size(); ++P) {
    const Partition &Part = Partitions[P];
    auto Where = [&](const std::string &What) {
      return formatString("partition %zu ('%s'): %s", P, Part.Name.c_str(),
                          What.c_str());
    };
    if (Part.Tasks.empty())
      return Fail(Where("has no tasks"));
    bool Bound =
        Part.Core >= 0 && static_cast<size_t>(Part.Core) < Cores.size();
    if (!Bound && (Policy == ValidationPolicy::Strict || Part.Core >= 0))
      return Fail(Where("is not bound to a valid core"));
    for (size_t T = 0; T < Part.Tasks.size(); ++T) {
      const Task &Tk = Part.Tasks[T];
      auto TWhere = [&](const std::string &What) {
        return Where(formatString("task %zu ('%s') %s", T, Tk.Name.c_str(),
                                  What.c_str()));
      };
      if (Tk.Period <= 0)
        return Fail(TWhere("has non-positive period"));
      if (Tk.Deadline <= 0 || Tk.Deadline > Tk.Period)
        return Fail(TWhere("needs 0 < deadline <= period"));
      if (Tk.Wcet.size() != static_cast<size_t>(NumCoreTypes))
        return Fail(TWhere("must list one WCET per core type"));
      for (TimeValue C : Tk.Wcet)
        if (C <= 0 || C > Tk.Deadline)
          return Fail(TWhere("needs 0 < WCET <= deadline"));
    }
  }

  // The hyperperiod must be representable before anything downstream is
  // allowed to compute with it (the checked fold names the period that
  // overflowed the accumulated lcm).
  Result<TimeValue> CheckedL = checkedHyperperiod();
  if (!CheckedL.ok())
    return CheckedL.takeError();
  TimeValue L = *CheckedL;

  // Pass 2: windows against the (now known-good) hyperperiod.
  for (size_t P = 0; P < Partitions.size(); ++P) {
    const Partition &Part = Partitions[P];
    auto Where = [&](const std::string &What) {
      return formatString("partition %zu ('%s'): %s", P, Part.Name.c_str(),
                          What.c_str());
    };
    for (const Window &W : Part.Windows) {
      if (W.Start < 0 || W.End > L || W.Start >= W.End)
        return Fail(
            Where(formatString("window [%lld, %lld) is not within the "
                               "hyperperiod %lld",
                               static_cast<long long>(W.Start),
                               static_cast<long long>(W.End),
                               static_cast<long long>(L))));
    }
  }

  // Windows on one core must not overlap (across all its partitions).
  for (size_t C = 0; C < Cores.size(); ++C) {
    std::vector<Window> All;
    for (const Partition &Part : Partitions)
      if (Part.Core == static_cast<int>(C))
        All.insert(All.end(), Part.Windows.begin(), Part.Windows.end());
    std::sort(All.begin(), All.end(), [](const Window &A, const Window &B) {
      return A.Start < B.Start;
    });
    for (size_t I = 1; I < All.size(); ++I)
      if (All[I].Start < All[I - 1].End)
        return Fail(formatString(
            "core %zu has overlapping windows [%lld,%lld) and [%lld,%lld)",
            C, static_cast<long long>(All[I - 1].Start),
            static_cast<long long>(All[I - 1].End),
            static_cast<long long>(All[I].Start),
            static_cast<long long>(All[I].End)));
  }

  for (size_t M = 0; M < Messages.size(); ++M) {
    const Message &Msg = Messages[M];
    auto MWhere = [&](const std::string &What) {
      return formatString("message %zu: %s", M, What.c_str());
    };
    auto ValidRef = [&](const TaskRef &R) {
      return R.Partition >= 0 &&
             static_cast<size_t>(R.Partition) < Partitions.size() &&
             R.Task >= 0 &&
             static_cast<size_t>(R.Task) <
                 Partitions[static_cast<size_t>(R.Partition)].Tasks.size();
    };
    if (!ValidRef(Msg.Sender) || !ValidRef(Msg.Receiver))
      return Fail(MWhere("references a non-existent task"));
    if (Msg.Sender == Msg.Receiver)
      return Fail(MWhere("connects a task to itself"));
    if (taskOf(Msg.Sender).Period != taskOf(Msg.Receiver).Period)
      return Fail(MWhere("connects tasks with different periods"));
    if (Msg.MemDelay < 0 || Msg.NetDelay < 0)
      return Fail(MWhere("has a negative transfer delay"));
  }
  return Error::success();
}
