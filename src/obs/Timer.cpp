//===- obs/Timer.cpp - RAII phase timers and the phase tree ----------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "obs/Timer.h"

#include "support/StringUtils.h"

#include <ostream>

using namespace swa;
using namespace swa::obs;

const PhaseTree::Node *
PhaseTree::Node::child(std::string_view ChildName) const {
  for (const auto &C : Children)
    if (C->Name == ChildName)
      return C.get();
  return nullptr;
}

PhaseTree &PhaseTree::global() {
  static PhaseTree T;
  return T;
}

void PhaseTree::push(std::string_view Name) {
  Node *Cur = Stack.back();
  for (const auto &C : Cur->Children) {
    if (C->Name == Name) {
      Stack.push_back(C.get());
      return;
    }
  }
  Cur->Children.push_back(std::make_unique<Node>());
  Cur->Children.back()->Name = std::string(Name);
  Stack.push_back(Cur->Children.back().get());
}

void PhaseTree::pop(uint64_t Nanos) {
  if (Stack.size() <= 1)
    return; // Unbalanced pop; ignore rather than corrupt the root.
  Node *Cur = Stack.back();
  Stack.pop_back();
  Cur->Nanos += Nanos;
  ++Cur->Count;
}

uint64_t PhaseTree::totalNanos() const {
  uint64_t Total = 0;
  for (const auto &C : Root.Children)
    Total += C->Nanos;
  return Total;
}

namespace {

void renderNode(std::ostream &OS, const PhaseTree::Node &N, int Depth) {
  OS << formatString("%*s%-*s %9.3f ms  x%llu\n", Depth * 2, "",
                     30 - Depth * 2, N.Name.c_str(),
                     static_cast<double>(N.Nanos) / 1e6,
                     static_cast<unsigned long long>(N.Count));
  for (const auto &C : N.Children)
    renderNode(OS, *C, Depth + 1);
}

} // namespace

void PhaseTree::render(std::ostream &OS) const {
  if (Root.Children.empty()) {
    OS << "  (no phases recorded)\n";
    return;
  }
  for (const auto &C : Root.Children)
    renderNode(OS, *C, 1);
}

void PhaseTree::reset() {
  Root.Children.clear();
  Root.Nanos = 0;
  Root.Count = 0;
  Stack.assign(1, &Root);
}
