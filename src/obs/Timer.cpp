//===- obs/Timer.cpp - RAII phase timers and the phase tree ----------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "obs/Timer.h"

#include "obs/ThreadSharded.h"
#include "support/StringUtils.h"

#include <ostream>

using namespace swa;
using namespace swa::obs;

namespace {
// Intentionally leaked (see Metrics.cpp: thread_local holders may outlive
// static destruction).
detail::ThreadSharded<PhaseTree> &trees() {
  static auto *T = new detail::ThreadSharded<PhaseTree>();
  return *T;
}
} // namespace

const PhaseTree::Node *
PhaseTree::Node::child(std::string_view ChildName) const {
  auto It = ChildIndex.find(ChildName);
  return It == ChildIndex.end() ? nullptr : Children[It->second].get();
}

PhaseTree::Node &PhaseTree::Node::childOrCreate(std::string_view ChildName) {
  auto It = ChildIndex.find(ChildName);
  if (It != ChildIndex.end())
    return *Children[It->second];
  Children.push_back(std::make_unique<Node>());
  Children.back()->Name = std::string(ChildName);
  ChildIndex.emplace(Children.back()->Name, Children.size() - 1);
  return *Children.back();
}

PhaseTree &PhaseTree::current() { return trees().local(); }

void PhaseTree::push(std::string_view Name) {
  Stack.push_back(&Stack.back()->childOrCreate(Name));
}

void PhaseTree::pop(uint64_t Nanos) {
  if (Stack.size() <= 1)
    return; // Unbalanced pop; ignore rather than corrupt the root.
  Node *Cur = Stack.back();
  Stack.pop_back();
  Cur->Nanos += Nanos;
  ++Cur->Count;
}

namespace {

void mergeInto(PhaseTree::Node &Dst, const PhaseTree::Node &Src) {
  Dst.Nanos += Src.Nanos;
  Dst.Count += Src.Count;
  for (const auto &C : Src.Children)
    mergeInto(Dst.childOrCreate(C->Name), *C);
}

} // namespace

PhaseTree::Node PhaseTree::mergedRoot() {
  Node Out;
  trees().forEach([&](PhaseTree &T, int) { mergeInto(Out, T.root()); });
  // mergeInto accumulated the roots' (zero) nanos too; keep the merged
  // root itself clean.
  Out.Nanos = 0;
  Out.Count = 0;
  return Out;
}

void PhaseTree::resetAll() {
  trees().forEach([](PhaseTree &T, int) { T.reset(); });
}

uint64_t PhaseTree::totalNanos(const Node &Root) {
  uint64_t Total = 0;
  for (const auto &C : Root.Children)
    Total += C->Nanos;
  return Total;
}

namespace {

void renderNode(std::ostream &OS, const PhaseTree::Node &N, int Depth) {
  OS << formatString("%*s%-*s %9.3f ms  x%llu\n", Depth * 2, "",
                     30 - Depth * 2, N.Name.c_str(),
                     static_cast<double>(N.Nanos) / 1e6,
                     static_cast<unsigned long long>(N.Count));
  for (const auto &C : N.Children)
    renderNode(OS, *C, Depth + 1);
}

} // namespace

void PhaseTree::render(std::ostream &OS, const Node &Root) {
  if (Root.Children.empty()) {
    OS << "  (no phases recorded)\n";
    return;
  }
  for (const auto &C : Root.Children)
    renderNode(OS, *C, 1);
}

void PhaseTree::reset() {
  Root = Node();
  Stack.assign(1, &Root);
}

void swa::obs::writePhaseChildrenJson(std::ostream &OS,
                                      const PhaseTree::Node &Root) {
  struct Emit {
    std::ostream &OS;
    void node(const PhaseTree::Node &N, bool First) {
      if (!First)
        OS << ",";
      OS << "{\"name\":\"" << N.Name << "\",\"ns\":" << N.Nanos
         << ",\"count\":" << N.Count << ",\"children\":[";
      bool F = true;
      for (const auto &C : N.Children) {
        node(*C, F);
        F = false;
      }
      OS << "]}";
    }
  } E{OS};
  OS << "[";
  bool First = true;
  for (const auto &C : Root.Children) {
    E.node(*C, First);
    First = false;
  }
  OS << "]";
}
