//===- obs/TraceSink.cpp - Structured simulator event sinks ----------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "obs/TraceSink.h"

#include "support/StringUtils.h"

#include <ostream>

using namespace swa;
using namespace swa::obs;

EventSink::~EventSink() = default;

void EventSink::onAction(int64_t, int32_t, std::string_view,
                         const Participant &,
                         const std::vector<Participant> &) {}
void EventSink::onDelay(int64_t, int64_t) {}
void EventSink::onVarWrite(int64_t, std::string_view, int32_t, int64_t) {}
void EventSink::onRunEnd(std::string_view, std::string_view) {}

std::string swa::obs::jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char Ch : S) {
    unsigned char U = static_cast<unsigned char>(Ch);
    switch (Ch) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    default:
      if (U < 0x20)
        Out += formatString("\\u%04x", U);
      else
        Out += Ch;
    }
  }
  return Out;
}

void JsonlSink::sealRecord() {
  ++Lines;
  if (FlushEachRecord)
    OS.flush();
}

void JsonlSink::onAction(int64_t Time, int32_t Channel,
                         std::string_view ChannelName,
                         const Participant &Initiator,
                         const std::vector<Participant> &Receivers) {
  OS << "{\"k\":\"action\",\"t\":" << Time;
  if (Channel >= 0)
    OS << ",\"chan\":\"" << jsonEscape(ChannelName) << "\"";
  OS << ",\"init\":\"" << jsonEscape(Initiator.Name)
     << "\",\"edge\":" << Initiator.Edge << ",\"recv\":[";
  bool First = true;
  for (const Participant &R : Receivers) {
    if (!First)
      OS << ",";
    OS << "\"" << jsonEscape(R.Name) << "\"";
    First = false;
  }
  OS << "]}\n";
  sealRecord();
}

void JsonlSink::onDelay(int64_t From, int64_t To) {
  OS << "{\"k\":\"delay\",\"from\":" << From << ",\"to\":" << To << "}\n";
  sealRecord();
}

void JsonlSink::onVarWrite(int64_t Time, std::string_view Var, int32_t Slot,
                           int64_t Value) {
  OS << "{\"k\":\"write\",\"t\":" << Time << ",\"var\":\"" << jsonEscape(Var)
     << "\",\"slot\":" << Slot << ",\"val\":" << Value << "}\n";
  sealRecord();
}

void JsonlSink::onRunEnd(std::string_view StopReason, std::string_view Error) {
  OS << "{\"k\":\"end\",\"stop\":\"" << jsonEscape(StopReason) << "\"";
  if (!Error.empty())
    OS << ",\"err\":\"" << jsonEscape(Error) << "\"";
  OS << "}\n";
  ++Lines;
  // Always seal the stream at run end, even when per-record flushing is off.
  OS.flush();
}
