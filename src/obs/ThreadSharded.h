//===- obs/ThreadSharded.h - Per-thread instrument domains ------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sharding substrate of the observability layer: a ThreadSharded<T>
/// hands every thread its own T ("shard") on first use, keeps all shards
/// alive for the life of the process, and lets publication points iterate
/// over every shard to build a deterministic, scheduling-independent
/// merged view.
///
/// Lifecycle: a shard is created (under the registry mutex) the first time
/// a thread calls local(). When the thread exits, its shard is *retired*
/// to a free list — values survive, so totals accumulated by a worker pool
/// remain mergeable after the pool is destroyed — and the next new thread
/// adopts a retired shard instead of growing the list. Shard count is
/// therefore bounded by the peak concurrent thread count, not by how many
/// pools a long-running process creates.
///
/// Synchronization contract: a shard is written only by its owning thread;
/// forEach() takes the registry mutex, which orders shard *creation*, but
/// deliberately does not stop the owners from writing concurrently. Merged
/// views are exact at quiescent points (after a ThreadPool::parallelFor
/// returned, at process shutdown) where the caller already has a
/// happens-before edge to every writer; reads elsewhere are monotone
/// snapshots. Instrument cells use relaxed atomics so a mid-run merge is
/// tearing-free and clean under ThreadSanitizer.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_OBS_THREADSHARDED_H
#define SWA_OBS_THREADSHARDED_H

#include <memory>
#include <mutex>
#include <vector>

namespace swa {
namespace obs {
namespace detail {

template <typename T> class ThreadSharded {
public:
  /// This thread's shard, created or adopted on first use. The reference
  /// stays valid for the life of the process (shards are never destroyed,
  /// only retired), so callers may cache pointers into it.
  T &local() {
    thread_local Holder H(*this);
    return *H.Shard;
  }

  /// Calls Fn(shard, shardId) for every shard ever created (live and
  /// retired), in creation order — a deterministic iteration order that
  /// does not depend on which threads currently exist.
  template <typename F> void forEach(F &&Fn) {
    std::lock_guard<std::mutex> Lock(Mu);
    for (size_t I = 0; I < Shards.size(); ++I)
      Fn(*Shards[I], static_cast<int>(I));
  }

  size_t shardCount() {
    std::lock_guard<std::mutex> Lock(Mu);
    return Shards.size();
  }

private:
  struct Holder {
    explicit Holder(ThreadSharded &Owner) : Owner(Owner) {
      std::lock_guard<std::mutex> Lock(Owner.Mu);
      if (!Owner.Free.empty()) {
        Shard = Owner.Free.back();
        Owner.Free.pop_back();
      } else {
        Owner.Shards.push_back(std::make_unique<T>());
        Shard = Owner.Shards.back().get();
      }
    }
    ~Holder() {
      std::lock_guard<std::mutex> Lock(Owner.Mu);
      Owner.Free.push_back(Shard);
    }
    ThreadSharded &Owner;
    T *Shard = nullptr;
  };

  std::mutex Mu;
  std::vector<std::unique_ptr<T>> Shards;
  std::vector<T *> Free;
};

} // namespace detail
} // namespace obs
} // namespace swa

#endif // SWA_OBS_THREADSHARDED_H
