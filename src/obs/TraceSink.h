//===- obs/TraceSink.h - Structured simulator event sinks -------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A pluggable observer interface for the simulator's step stream: action
/// steps (internal / binary / broadcast synchronizations), delay steps,
/// and shared-variable writes. Sinks receive fully resolved names so they
/// need no access to the network.
///
/// Sinks are strictly *observers*: the simulator hands them copies of what
/// it already decided and never reads anything back, so attaching a sink
/// cannot perturb the deterministic run (the overhead-guard test in
/// tests/ObsTest.cpp proves traces are byte-identical with a sink on).
///
/// JsonlSink streams one JSON object per line, suitable for jq/pandas
/// style offline inspection:
///
///   {"k":"action","t":12,"chan":"exec[1]","init":"ts_p0","recv":["t1"]}
///   {"k":"delay","from":12,"to":20}
///   {"k":"write","t":20,"var":"is_ready[3]","slot":17,"val":1}
///
//===----------------------------------------------------------------------===//

#ifndef SWA_OBS_TRACESINK_H
#define SWA_OBS_TRACESINK_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace swa {
namespace obs {

/// Observer of simulator steps. Default implementations ignore
/// everything, so a sink overrides only what it cares about.
class EventSink {
public:
  struct Participant {
    int32_t Aut = -1;
    std::string_view Name;
    int32_t Edge = -1;
  };

  virtual ~EventSink();

  /// An action step was applied at model time \p Time. \p Channel is the
  /// flat channel id (-1 for internal steps, with \p ChannelName empty).
  virtual void onAction(int64_t Time, int32_t Channel,
                        std::string_view ChannelName,
                        const Participant &Initiator,
                        const std::vector<Participant> &Receivers);

  /// Model time advanced from \p From to \p To.
  virtual void onDelay(int64_t From, int64_t To);

  /// A store slot was written (by the action step reported just before).
  virtual void onVarWrite(int64_t Time, std::string_view Var, int32_t Slot,
                          int64_t Value);

  /// The run ended. \p StopReason is the stable nsa::stopReasonName string
  /// ("completed", "budget-exceeded", ...) and \p Error the run's error
  /// message (empty on success). Emitted on *every* exit path, including
  /// guard-rail aborts, so a sink can seal its output.
  virtual void onRunEnd(std::string_view StopReason, std::string_view Error);
};

/// Streams events as JSON Lines to an ostream.
///
/// Crash-safe by default: every record is flushed at its line boundary and
/// an explicit {"k":"end",...} record (with the StopReason) is written when
/// the run ends, so a campaign killed mid-run leaves a parseable event log
/// whose last line tells whether the run completed. Pass FlushEachRecord =
/// false for throughput-sensitive offline dumps where losing the tail of a
/// crashed run is acceptable.
class JsonlSink : public EventSink {
public:
  explicit JsonlSink(std::ostream &OS, bool FlushEachRecord = true)
      : OS(OS), FlushEachRecord(FlushEachRecord) {}

  void onAction(int64_t Time, int32_t Channel, std::string_view ChannelName,
                const Participant &Initiator,
                const std::vector<Participant> &Receivers) override;
  void onDelay(int64_t From, int64_t To) override;
  void onVarWrite(int64_t Time, std::string_view Var, int32_t Slot,
                  int64_t Value) override;
  void onRunEnd(std::string_view StopReason, std::string_view Error) override;

  uint64_t linesWritten() const { return Lines; }

private:
  void sealRecord();

  std::ostream &OS;
  bool FlushEachRecord;
  uint64_t Lines = 0;
};

/// Escapes \p S for inclusion in a JSON string literal (quotes, backslash,
/// control characters; everything else passes through).
std::string jsonEscape(std::string_view S);

} // namespace obs
} // namespace swa

#endif // SWA_OBS_TRACESINK_H
