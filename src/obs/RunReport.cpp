//===- obs/RunReport.cpp - Machine-readable run summaries ------------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "obs/RunReport.h"

#include "obs/Metrics.h"
#include "obs/Timer.h"
#include "obs/TraceSink.h"
#include "support/StringUtils.h"

#include <fstream>
#include <ostream>

using namespace swa;
using namespace swa::obs;

void RunReport::addCount(std::string_view Name, uint64_t Value) {
  Entry E;
  E.Name = std::string(Name);
  E.IsCount = true;
  E.U = Value;
  Entries.push_back(std::move(E));
}

void RunReport::addStat(std::string_view Name, double Value) {
  Entry E;
  E.Name = std::string(Name);
  E.D = Value;
  Entries.push_back(std::move(E));
}

void RunReport::write(std::ostream &OS) const {
  OS << "{\"swa_run_report\":" << SchemaVersion << ",\"tool\":\""
     << jsonEscape(Tool) << "\",\"stats\":{";
  bool First = true;
  for (const Entry &E : Entries) {
    if (!First)
      OS << ",";
    OS << "\"" << jsonEscape(E.Name) << "\":";
    if (E.IsCount)
      OS << E.U;
    else
      OS << formatString("%.6g", E.D);
    First = false;
  }

  Registry &Reg = Registry::global();
  OS << "},\"counters\":{";
  First = true;
  for (const auto &[Name, Value] : Reg.counterValues()) {
    if (!First)
      OS << ",";
    OS << "\"" << jsonEscape(Name) << "\":" << Value;
    First = false;
  }

  OS << "},\"histograms\":{";
  First = true;
  for (const auto &[Name, H] : Reg.histograms()) {
    if (!First)
      OS << ",";
    OS << "\"" << jsonEscape(Name) << "\":{\"n\":" << H.count()
       << ",\"sum\":" << H.sum() << ",\"min\":" << H.min()
       << ",\"max\":" << H.max() << "}";
    First = false;
  }

  OS << "},\"phases\":";
  PhaseTree::Node Phases = PhaseTree::mergedRoot();
  writePhaseChildrenJson(OS, Phases);
  OS << "}\n";
}

bool RunReport::writeFile(const std::string &Path, std::string &Error) const {
  std::ofstream OS(Path);
  if (!OS) {
    Error = "cannot open " + Path + " for writing";
    return false;
  }
  write(OS);
  OS.flush();
  if (!OS) {
    Error = "write to " + Path + " failed";
    return false;
  }
  return true;
}
