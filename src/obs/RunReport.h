//===- obs/RunReport.h - Machine-readable run summaries ---------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A versioned JSON summary of one tool run: tool-specific stats (cache
/// hit/miss/fold counts, stop-reason taxonomy, candidates/s, ...) plus the
/// merged observability state — counters, histogram summaries, and the
/// phase tree — captured at write() time. Consumers (bench/compare_bench.py)
/// key on the schema version field, so perf regressions can be *attributed*
/// ("hit rate dropped 40%", "simulate nanos doubled") instead of just
/// detected.
///
/// Schema (version 1):
///
///   {"swa_run_report": 1,
///    "tool": "config_search",
///    "stats": {"cache.hits": 12, "candidates_per_sec": 3451.2, ...},
///    "counters": {merged registry counters by name},
///    "histograms": {"name": {"n":..,"sum":..,"min":..,"max":..}, ...},
///    "phases": [{"name","ns","count","children":[...]}, ...]}
///
/// Stats preserve insertion order; counters/histograms are sorted by name
/// (the merged registry's deterministic order).
///
//===----------------------------------------------------------------------===//

#ifndef SWA_OBS_RUNREPORT_H
#define SWA_OBS_RUNREPORT_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace swa {
namespace obs {

class RunReport {
public:
  static constexpr int SchemaVersion = 1;

  explicit RunReport(std::string Tool) : Tool(std::move(Tool)) {}

  /// Adds an integer stat (exact in the JSON output).
  void addCount(std::string_view Name, uint64_t Value);
  /// Adds a floating-point stat (rates, ratios, per-second figures).
  void addStat(std::string_view Name, double Value);

  /// Serializes the report, capturing the merged registry and phase tree
  /// at this moment. Call at a quiescent point (after the run finished).
  void write(std::ostream &OS) const;

  /// write() to \p Path; returns false and fills \p Error on I/O failure.
  bool writeFile(const std::string &Path, std::string &Error) const;

private:
  struct Entry {
    std::string Name;
    bool IsCount = false;
    uint64_t U = 0;
    double D = 0.0;
  };

  std::string Tool;
  std::vector<Entry> Entries;
};

} // namespace obs
} // namespace swa

#endif // SWA_OBS_RUNREPORT_H
