//===- obs/Span.cpp - Timed spans with Chrome trace export -----------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "obs/Span.h"

#include "obs/Metrics.h"
#include "obs/ThreadSharded.h"
#include "obs/TraceSink.h"
#include "support/StringUtils.h"

#include <ostream>
#include <vector>

using namespace swa;
using namespace swa::obs;

namespace {
bool SpansFlag = false;

/// One thread's span ring. Written only by the owning thread; read by
/// writeChromeTrace()/spanCount() at quiescent points (the callers hold a
/// happens-before edge to every recording thread, e.g. a joined pool).
struct SpanRing {
  std::vector<SpanRecord> Buf; // sized lazily to spanRingCapacity()
  uint64_t Head = 0;           // total spans ever recorded

  void record(const SpanRecord &R) {
    if (Buf.empty())
      Buf.resize(spanRingCapacity());
    Buf[Head % spanRingCapacity()] = R;
    ++Head;
  }

  uint64_t dropped() const {
    return Head > spanRingCapacity() ? Head - spanRingCapacity() : 0;
  }

  uint64_t buffered() const {
    return Head > spanRingCapacity() ? spanRingCapacity() : Head;
  }
};

// Intentionally leaked (see Metrics.cpp: thread_local holders may outlive
// static destruction).
detail::ThreadSharded<SpanRing> &rings() {
  static auto *R = new detail::ThreadSharded<SpanRing>();
  return *R;
}

/// The process trace epoch: all span timestamps are relative to the first
/// use of the span layer, keeping trace-viewer timestamps small.
std::chrono::steady_clock::time_point traceEpoch() {
  static const std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();
  return Epoch;
}

uint64_t sinceEpochNs(std::chrono::steady_clock::time_point T) {
  auto Ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                T - traceEpoch())
                .count();
  return Ns > 0 ? static_cast<uint64_t>(Ns) : 0;
}
} // namespace

bool swa::obs::spansEnabled() { return SpansFlag && !threadSuppressed(); }

void swa::obs::setSpansEnabled(bool On) {
  if (On)
    traceEpoch(); // pin the epoch before the first span
  SpansFlag = On;
}

void swa::obs::recordSpan(const char *Name, const char *Cat,
                          std::chrono::steady_clock::time_point Begin,
                          std::chrono::steady_clock::time_point End,
                          const SpanArg *Args, int NumArgs) {
  SpanRecord R;
  R.Name = Name;
  R.Cat = Cat;
  R.BeginNs = sinceEpochNs(Begin);
  R.EndNs = sinceEpochNs(End);
  if (NumArgs > SpanRecord::MaxArgs)
    NumArgs = SpanRecord::MaxArgs;
  for (int I = 0; I < NumArgs; ++I)
    R.Args[I] = Args[I];
  R.NumArgs = NumArgs;
  rings().local().record(R);
}

size_t swa::obs::spanCount() {
  size_t Total = 0;
  rings().forEach(
      [&](SpanRing &R, int) { Total += static_cast<size_t>(R.buffered()); });
  return Total;
}

uint64_t swa::obs::spansDropped() {
  uint64_t Total = 0;
  rings().forEach([&](SpanRing &R, int) { Total += R.dropped(); });
  return Total;
}

void swa::obs::resetSpans() {
  rings().forEach([](SpanRing &R, int) {
    R.Buf.clear();
    R.Head = 0;
  });
}

void swa::obs::writeChromeTrace(std::ostream &OS) {
  OS << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool First = true;
  rings().forEach([&](SpanRing &R, int Tid) {
    if (R.Head == 0)
      return;
    // Thread-name metadata so viewers label the lane by shard id.
    if (!First)
      OS << ",";
    First = false;
    OS << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":" << Tid
       << ",\"args\":{\"name\":\"shard-" << Tid << "\"}}";
    uint64_t Start = R.Head > spanRingCapacity() ? R.Head - spanRingCapacity()
                                                 : 0;
    for (uint64_t I = Start; I < R.Head; ++I) {
      const SpanRecord &S = R.Buf[I % spanRingCapacity()];
      // Complete event; microsecond timestamps with ns precision kept in
      // the fraction.
      OS << ",{\"name\":\"" << jsonEscape(S.Name) << "\",\"cat\":\""
         << jsonEscape(S.Cat) << "\",\"ph\":\"X\",\"ts\":"
         << formatString("%.3f", static_cast<double>(S.BeginNs) / 1e3)
         << ",\"dur\":"
         << formatString("%.3f",
                         static_cast<double>(S.EndNs - S.BeginNs) / 1e3)
         << ",\"pid\":1,\"tid\":" << Tid;
      if (S.NumArgs > 0) {
        OS << ",\"args\":{";
        for (int A = 0; A < S.NumArgs; ++A) {
          if (A)
            OS << ",";
          OS << "\"" << jsonEscape(S.Args[A].Key)
             << "\":" << S.Args[A].Value;
        }
        OS << "}";
      }
      OS << "}";
    }
  });
  OS << "]}\n";
}
