//===- obs/Metrics.h - Process-wide counters and histograms -----*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics half of the observability layer: named monotonic counters
/// and log2-bucketed histograms held in a process-wide registry. The hot
/// layers (simulator, model checker, config search) accumulate into plain
/// local integers and publish totals here once per run, so the engine's
/// inner loops never touch the registry; everything is additionally gated
/// on the global enable flag, making the layer free when observability is
/// off.
///
/// Instruments are registered by name on first use and keep stable
/// addresses for the life of the process (the registry stores them in a
/// std::map), so callers may cache Counter*/Histogram* pointers across
/// runs. reset() zeroes values but keeps registrations.
///
/// Counters and histograms are *observers*: nothing in the engine reads
/// them back, so enabling metrics can never change a verdict or a trace
/// (see DESIGN.md, "Observability").
///
//===----------------------------------------------------------------------===//

#ifndef SWA_OBS_METRICS_H
#define SWA_OBS_METRICS_H

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace swa {
namespace obs {

/// Global observability switch. Gates phase timers and the registry
/// publication of every instrumented layer. Off by default. Returns false
/// on threads where observability is suppressed (see ThreadSuppressGuard),
/// regardless of the global switch.
bool enabled();
void setEnabled(bool On);

/// RAII thread-local observability suppression. While alive, enabled()
/// returns false *on this thread only*: instrumented code running on the
/// thread publishes nothing and starts no phase timers. The registry and
/// phase tree are single-threaded by design; worker threads (config-search
/// candidate evaluation) hold one of these so they never touch either, and
/// so registry contents are identical for every worker count. Nestable.
class ThreadSuppressGuard {
public:
  ThreadSuppressGuard();
  ~ThreadSuppressGuard();
  ThreadSuppressGuard(const ThreadSuppressGuard &) = delete;
  ThreadSuppressGuard &operator=(const ThreadSuppressGuard &) = delete;
};

/// A monotonic event counter.
class Counter {
public:
  void add(uint64_t N = 1) { Value += N; }
  uint64_t value() const { return Value; }
  void reset() { Value = 0; }

private:
  uint64_t Value = 0;
};

/// A histogram over uint64 samples with power-of-two buckets: bucket B
/// counts samples V with floor(log2(V)) == B (bucket 0 also holds V == 0).
/// Tracks count/sum/min/max exactly; the buckets give the shape.
class Histogram {
public:
  static constexpr int NumBuckets = 64;

  void record(uint64_t V) {
    ++Buckets[bucketOf(V)];
    ++N;
    Sum += V;
    if (V < MinV)
      MinV = V;
    if (V > MaxV)
      MaxV = V;
  }

  uint64_t count() const { return N; }
  uint64_t sum() const { return Sum; }
  /// Minimum/maximum recorded sample; 0 when empty.
  uint64_t min() const { return N ? MinV : 0; }
  uint64_t max() const { return N ? MaxV : 0; }
  double mean() const {
    return N ? static_cast<double>(Sum) / static_cast<double>(N) : 0.0;
  }
  uint64_t bucketCount(int B) const {
    return Buckets[static_cast<size_t>(B)];
  }

  /// Bucket index of a sample: floor(log2(V)), with 0 mapping to bucket 0.
  static int bucketOf(uint64_t V) {
    int B = 0;
    while (V >>= 1)
      ++B;
    return B;
  }

  void reset() { *this = Histogram(); }

private:
  uint64_t Buckets[NumBuckets] = {};
  uint64_t N = 0;
  uint64_t Sum = 0;
  uint64_t MinV = UINT64_MAX;
  uint64_t MaxV = 0;
};

/// The process-wide instrument registry. Lookup is by name ("layer.what"
/// convention, e.g. "nsa.heap.pops"); first use registers.
///
/// Registration is not thread-safe by design: the engines are
/// single-threaded and publish once per run. Future multi-threaded layers
/// must publish through per-thread locals.
class Registry {
public:
  static Registry &global();

  Counter &counter(std::string_view Name);
  Histogram &histogram(std::string_view Name);

  /// Name/value pairs of every registered counter, sorted by name.
  std::vector<std::pair<std::string, uint64_t>> counterValues() const;

  /// Every registered histogram, sorted by name.
  std::vector<std::pair<std::string, const Histogram *>> histograms() const;

  /// Zeroes every instrument; registrations (and cached pointers) survive.
  void reset();

private:
  std::map<std::string, Counter, std::less<>> Counters;
  std::map<std::string, Histogram, std::less<>> Histograms_;
};

/// Dumps the phase tree, counters and histogram summaries. Text form is
/// for humans; the JSON form is one object with "phases", "counters" and
/// "histograms" keys.
void report(std::ostream &OS, bool Json = false);

} // namespace obs
} // namespace swa

#endif // SWA_OBS_METRICS_H
