//===- obs/Metrics.h - Thread-sharded counters and histograms ---*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics half of the observability layer: named monotonic counters
/// and log2-bucketed histograms, accumulated in *thread-sharded* domains.
/// Each thread publishes into its own shard (created on first use and
/// retired to a free list at thread exit); publication points merge the
/// shards by stable instrument name into one ordered view, so the merged
/// registry contents are a pure function of the work performed — identical
/// for every worker count and every thread schedule. Worker threads of the
/// parallel config search therefore publish freely; ThreadSuppressGuard
/// remains available as an explicit opt-out, no longer a mandatory
/// blackout.
///
/// The hot layers (simulator, model checker, config search) still
/// accumulate into plain local integers and publish totals once per run,
/// so the engines' inner loops never touch the registry; everything is
/// additionally gated on the global enable flag, making the layer one
/// branch per site when observability is off.
///
/// Instruments are registered by name on first use and keep stable
/// addresses for the life of the process within their shard (each shard
/// stores them in a transparent-comparator std::map), so callers may cache
/// Counter*/Histogram* pointers across runs *on the thread that obtained
/// them*. reset() zeroes values in every shard but keeps registrations.
///
/// Instrument cells are single-writer relaxed atomics: only the owning
/// thread writes them, merges read them, so a merge concurrent with
/// recording is tearing-free and ThreadSanitizer-clean. Exact totals are
/// guaranteed at quiescent points (after ThreadPool::parallelFor returned,
/// end of run) where the caller has a happens-before edge to every writer.
///
/// Counters and histograms are *observers*: nothing in the engine reads
/// them back, so enabling metrics can never change a verdict or a trace
/// (see DESIGN.md, "Observability").
///
//===----------------------------------------------------------------------===//

#ifndef SWA_OBS_METRICS_H
#define SWA_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace swa {
namespace obs {

/// Global observability switch. Gates phase timers and the registry
/// publication of every instrumented layer. Off by default. Returns false
/// on threads where observability is suppressed (see ThreadSuppressGuard),
/// regardless of the global switch.
bool enabled();
void setEnabled(bool On);

/// True while a ThreadSuppressGuard is alive on this thread. Exposed so
/// sibling layers (spans, phase timers) share the same opt-out.
bool threadSuppressed();

/// RAII thread-local observability opt-out. While alive, enabled() and
/// spansEnabled() return false *on this thread only*: instrumented code
/// running on the thread publishes nothing, starts no phase timers and
/// records no spans. With the sharded registry this is no longer required
/// for correctness anywhere — worker threads publish into their own
/// shards — it exists for callers that want a telemetry-free region (e.g.
/// a measurement loop that must not observe itself). Nestable.
class ThreadSuppressGuard {
public:
  ThreadSuppressGuard();
  ~ThreadSuppressGuard();
  ThreadSuppressGuard(const ThreadSuppressGuard &) = delete;
  ThreadSuppressGuard &operator=(const ThreadSuppressGuard &) = delete;
};

/// A monotonic event counter. Single-writer: only the thread owning the
/// enclosing shard calls add()/reset(); value() may be read from any
/// thread (relaxed — exact once the writer quiesced).
class Counter {
public:
  void add(uint64_t N = 1) {
    Value.store(Value.load(std::memory_order_relaxed) + N,
                std::memory_order_relaxed);
  }
  uint64_t value() const { return Value.load(std::memory_order_relaxed); }
  void reset() { Value.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Value{0};
};

/// A histogram over uint64 samples with power-of-two buckets: bucket B
/// counts samples V with floor(log2(V)) == B (bucket 0 also holds V == 0).
/// Tracks count/sum/min/max exactly; the buckets give the shape. Same
/// single-writer contract as Counter; copyable so merged snapshots can be
/// returned by value.
class Histogram {
public:
  static constexpr int NumBuckets = 64;

  Histogram() = default;
  Histogram(const Histogram &O) { copyFrom(O); }
  Histogram &operator=(const Histogram &O) {
    if (this != &O)
      copyFrom(O);
    return *this;
  }

  void record(uint64_t V) {
    bump(Buckets[static_cast<size_t>(bucketOf(V))], 1);
    bump(N, 1);
    bump(Sum, V);
    if (V < MinV.load(std::memory_order_relaxed))
      MinV.store(V, std::memory_order_relaxed);
    if (V > MaxV.load(std::memory_order_relaxed))
      MaxV.store(V, std::memory_order_relaxed);
  }

  uint64_t count() const { return N.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  /// Minimum/maximum recorded sample; 0 when empty.
  uint64_t min() const {
    return count() ? MinV.load(std::memory_order_relaxed) : 0;
  }
  uint64_t max() const {
    return count() ? MaxV.load(std::memory_order_relaxed) : 0;
  }
  double mean() const {
    uint64_t C = count();
    return C ? static_cast<double>(sum()) / static_cast<double>(C) : 0.0;
  }
  uint64_t bucketCount(int B) const {
    return Buckets[static_cast<size_t>(B)].load(std::memory_order_relaxed);
  }

  /// Bucket index of a sample: floor(log2(V)), with 0 mapping to bucket 0.
  static int bucketOf(uint64_t V) {
    int B = 0;
    while (V >>= 1)
      ++B;
    return B;
  }

  /// Accumulates \p O into this histogram (merge step; writer-side only).
  void merge(const Histogram &O);

  void reset();

private:
  static void bump(std::atomic<uint64_t> &Cell, uint64_t By) {
    Cell.store(Cell.load(std::memory_order_relaxed) + By,
               std::memory_order_relaxed);
  }
  void copyFrom(const Histogram &O);

  std::atomic<uint64_t> Buckets[NumBuckets] = {};
  std::atomic<uint64_t> N{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> MinV{UINT64_MAX};
  std::atomic<uint64_t> MaxV{0};
};

/// The process-wide instrument registry, sharded per thread. counter() and
/// histogram() resolve in the *calling thread's* shard (lookup is by name,
/// "layer.what" convention, e.g. "nsa.heap.pops"; first use registers —
/// the shard maps use std::less<> so a string_view lookup allocates
/// nothing). The merged views aggregate every shard by name, sorted, so
/// their contents do not depend on which thread published what.
class Registry {
public:
  static Registry &global();

  Counter &counter(std::string_view Name);
  Histogram &histogram(std::string_view Name);

  /// Name/value pairs of every registered counter, merged across shards
  /// (values summed by name), sorted by name.
  std::vector<std::pair<std::string, uint64_t>> counterValues() const;

  /// Every registered histogram, merged across shards, sorted by name.
  std::vector<std::pair<std::string, Histogram>> histograms() const;

  /// Zeroes every instrument in every shard; registrations (and cached
  /// pointers) survive. Call only at quiescent points.
  void reset();

  /// Shards ever created (live + retired) — diagnostics and tests.
  size_t shardCount() const;
};

/// Dumps the merged phase tree, counters and histogram summaries. Text
/// form is for humans; the JSON form is one object with "phases",
/// "counters" and "histograms" keys.
void report(std::ostream &OS, bool Json = false);

} // namespace obs
} // namespace swa

#endif // SWA_OBS_METRICS_H
