//===- obs/Metrics.cpp - Thread-sharded counters and histograms ------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "obs/ThreadSharded.h"
#include "obs/Timer.h"
#include "support/StringUtils.h"

#include <mutex>
#include <ostream>

using namespace swa;
using namespace swa::obs;

namespace {
bool EnabledFlag = false;
thread_local int SuppressDepth = 0;

/// One thread's instrument domain. The maps' *structure* is guarded by Mu
/// so cross-thread merges can iterate safely; the owning thread's lookups
/// take the lock only on first registration (its own inserts cannot race
/// with its own finds, and merging threads only read).
struct Shard {
  std::mutex Mu;
  std::map<std::string, Counter, std::less<>> Counters;
  std::map<std::string, Histogram, std::less<>> Histograms;

  Counter &counter(std::string_view Name) {
    auto It = Counters.find(Name);
    if (It != Counters.end())
      return It->second;
    std::lock_guard<std::mutex> Lock(Mu);
    return Counters.try_emplace(std::string(Name)).first->second;
  }

  Histogram &histogram(std::string_view Name) {
    auto It = Histograms.find(Name);
    if (It != Histograms.end())
      return It->second;
    std::lock_guard<std::mutex> Lock(Mu);
    return Histograms.try_emplace(std::string(Name)).first->second;
  }
};

// Intentionally leaked: thread_local shard holders release their shard in
// their destructor, which can run after static destruction at process
// exit; leaking keeps the owner alive for them.
detail::ThreadSharded<Shard> &shards() {
  static auto *S = new detail::ThreadSharded<Shard>();
  return *S;
}
} // namespace

bool swa::obs::enabled() { return EnabledFlag && SuppressDepth == 0; }
void swa::obs::setEnabled(bool On) { EnabledFlag = On; }
bool swa::obs::threadSuppressed() { return SuppressDepth > 0; }

ThreadSuppressGuard::ThreadSuppressGuard() { ++SuppressDepth; }
ThreadSuppressGuard::~ThreadSuppressGuard() { --SuppressDepth; }

void Histogram::merge(const Histogram &O) {
  for (int B = 0; B < NumBuckets; ++B)
    bump(Buckets[static_cast<size_t>(B)], O.bucketCount(B));
  bump(N, O.N.load(std::memory_order_relaxed));
  bump(Sum, O.Sum.load(std::memory_order_relaxed));
  uint64_t OMin = O.MinV.load(std::memory_order_relaxed);
  uint64_t OMax = O.MaxV.load(std::memory_order_relaxed);
  if (OMin < MinV.load(std::memory_order_relaxed))
    MinV.store(OMin, std::memory_order_relaxed);
  if (OMax > MaxV.load(std::memory_order_relaxed))
    MaxV.store(OMax, std::memory_order_relaxed);
}

void Histogram::copyFrom(const Histogram &O) {
  for (int B = 0; B < NumBuckets; ++B)
    Buckets[static_cast<size_t>(B)].store(O.bucketCount(B),
                                          std::memory_order_relaxed);
  N.store(O.N.load(std::memory_order_relaxed), std::memory_order_relaxed);
  Sum.store(O.Sum.load(std::memory_order_relaxed), std::memory_order_relaxed);
  MinV.store(O.MinV.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
  MaxV.store(O.MaxV.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
}

void Histogram::reset() {
  for (int B = 0; B < NumBuckets; ++B)
    Buckets[static_cast<size_t>(B)].store(0, std::memory_order_relaxed);
  N.store(0, std::memory_order_relaxed);
  Sum.store(0, std::memory_order_relaxed);
  MinV.store(UINT64_MAX, std::memory_order_relaxed);
  MaxV.store(0, std::memory_order_relaxed);
}

Registry &Registry::global() {
  static Registry R;
  return R;
}

Counter &Registry::counter(std::string_view Name) {
  return shards().local().counter(Name);
}

Histogram &Registry::histogram(std::string_view Name) {
  return shards().local().histogram(Name);
}

std::vector<std::pair<std::string, uint64_t>>
Registry::counterValues() const {
  // std::map keeps the merged view sorted by name; summation is
  // order-independent, so the result does not depend on shard count or
  // which thread published what.
  std::map<std::string, uint64_t, std::less<>> Merged;
  shards().forEach([&](Shard &S, int) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    for (const auto &[Name, C] : S.Counters)
      Merged[Name] += C.value();
  });
  return {Merged.begin(), Merged.end()};
}

std::vector<std::pair<std::string, Histogram>> Registry::histograms() const {
  std::map<std::string, Histogram, std::less<>> Merged;
  shards().forEach([&](Shard &S, int) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    for (const auto &[Name, H] : S.Histograms)
      Merged[Name].merge(H);
  });
  return {Merged.begin(), Merged.end()};
}

void Registry::reset() {
  shards().forEach([](Shard &S, int) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    for (auto &[Name, C] : S.Counters)
      C.reset();
    for (auto &[Name, H] : S.Histograms)
      H.reset();
  });
}

size_t Registry::shardCount() const { return shards().shardCount(); }

void swa::obs::report(std::ostream &OS, bool Json) {
  Registry &Reg = Registry::global();
  PhaseTree::Node Phases = PhaseTree::mergedRoot();
  if (!Json) {
    OS << "phases:\n";
    PhaseTree::render(OS, Phases);
    OS << "counters:\n";
    for (const auto &[Name, Value] : Reg.counterValues())
      OS << formatString("  %-36s %llu\n", Name.c_str(),
                         static_cast<unsigned long long>(Value));
    OS << "histograms:\n";
    for (const auto &[Name, H] : Reg.histograms())
      OS << formatString(
          "  %-36s n=%llu sum=%llu min=%llu mean=%.1f max=%llu\n",
          Name.c_str(), static_cast<unsigned long long>(H.count()),
          static_cast<unsigned long long>(H.sum()),
          static_cast<unsigned long long>(H.min()), H.mean(),
          static_cast<unsigned long long>(H.max()));
    return;
  }

  // JSON form: {"phases":[...],"counters":{...},"histograms":{...}}.
  OS << "{\"phases\":";
  writePhaseChildrenJson(OS, Phases);
  OS << ",\"counters\":{";
  bool First = true;
  for (const auto &[Name, Value] : Reg.counterValues()) {
    if (!First)
      OS << ",";
    OS << "\"" << Name << "\":" << Value;
    First = false;
  }
  OS << "},\"histograms\":{";
  First = true;
  for (const auto &[Name, H] : Reg.histograms()) {
    if (!First)
      OS << ",";
    OS << "\"" << Name << "\":{\"n\":" << H.count() << ",\"sum\":" << H.sum()
       << ",\"min\":" << H.min() << ",\"max\":" << H.max() << "}";
    First = false;
  }
  OS << "}}\n";
}
