//===- obs/Metrics.cpp - Process-wide counters and histograms --------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "obs/Timer.h"
#include "support/StringUtils.h"

#include <ostream>

using namespace swa;
using namespace swa::obs;

namespace {
bool EnabledFlag = false;
thread_local int SuppressDepth = 0;
} // namespace

bool swa::obs::enabled() { return EnabledFlag && SuppressDepth == 0; }
void swa::obs::setEnabled(bool On) { EnabledFlag = On; }

ThreadSuppressGuard::ThreadSuppressGuard() { ++SuppressDepth; }
ThreadSuppressGuard::~ThreadSuppressGuard() { --SuppressDepth; }

Registry &Registry::global() {
  static Registry R;
  return R;
}

Counter &Registry::counter(std::string_view Name) {
  auto It = Counters.find(Name);
  if (It == Counters.end())
    It = Counters.emplace(std::string(Name), Counter()).first;
  return It->second;
}

Histogram &Registry::histogram(std::string_view Name) {
  auto It = Histograms_.find(Name);
  if (It == Histograms_.end())
    It = Histograms_.emplace(std::string(Name), Histogram()).first;
  return It->second;
}

std::vector<std::pair<std::string, uint64_t>>
Registry::counterValues() const {
  std::vector<std::pair<std::string, uint64_t>> Out;
  Out.reserve(Counters.size());
  for (const auto &[Name, C] : Counters)
    Out.push_back({Name, C.value()});
  return Out;
}

std::vector<std::pair<std::string, const Histogram *>>
Registry::histograms() const {
  std::vector<std::pair<std::string, const Histogram *>> Out;
  Out.reserve(Histograms_.size());
  for (const auto &[Name, H] : Histograms_)
    Out.push_back({Name, &H});
  return Out;
}

void Registry::reset() {
  for (auto &[Name, C] : Counters)
    C.reset();
  for (auto &[Name, H] : Histograms_)
    H.reset();
}

void swa::obs::report(std::ostream &OS, bool Json) {
  Registry &Reg = Registry::global();
  if (!Json) {
    OS << "phases:\n";
    PhaseTree::global().render(OS);
    OS << "counters:\n";
    for (const auto &[Name, Value] : Reg.counterValues())
      OS << formatString("  %-36s %llu\n", Name.c_str(),
                         static_cast<unsigned long long>(Value));
    OS << "histograms:\n";
    for (const auto &[Name, H] : Reg.histograms())
      OS << formatString(
          "  %-36s n=%llu sum=%llu min=%llu mean=%.1f max=%llu\n",
          Name.c_str(), static_cast<unsigned long long>(H->count()),
          static_cast<unsigned long long>(H->sum()),
          static_cast<unsigned long long>(H->min()), H->mean(),
          static_cast<unsigned long long>(H->max()));
    return;
  }

  // JSON form: {"phases":[...],"counters":{...},"histograms":{...}}.
  OS << "{\"phases\":[";
  struct Emit {
    std::ostream &OS;
    void node(const PhaseTree::Node &N, bool First) {
      if (!First)
        OS << ",";
      OS << "{\"name\":\"" << N.Name << "\",\"ns\":" << N.Nanos
         << ",\"count\":" << N.Count << ",\"children\":[";
      bool F = true;
      for (const auto &C : N.Children) {
        node(*C, F);
        F = false;
      }
      OS << "]}";
    }
  } E{OS};
  bool First = true;
  for (const auto &C : PhaseTree::global().root().Children) {
    E.node(*C, First);
    First = false;
  }
  OS << "],\"counters\":{";
  First = true;
  for (const auto &[Name, Value] : Reg.counterValues()) {
    if (!First)
      OS << ",";
    OS << "\"" << Name << "\":" << Value;
    First = false;
  }
  OS << "},\"histograms\":{";
  First = true;
  for (const auto &[Name, H] : Reg.histograms()) {
    if (!First)
      OS << ",";
    OS << "\"" << Name << "\":{\"n\":" << H->count()
       << ",\"sum\":" << H->sum() << ",\"min\":" << H->min()
       << ",\"max\":" << H->max() << "}";
    First = false;
  }
  OS << "}}\n";
}
