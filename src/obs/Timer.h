//===- obs/Timer.h - RAII phase timers and the phase tree -------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hierarchical phase timing: a ScopedTimer pushes a named phase onto the
/// *calling thread's* PhaseTree on construction and records the elapsed
/// steady-clock nanoseconds on destruction. Nested timers build a tree
/// (build -> compile, simulate, analyze -> criterion, ...), so a report
/// shows where a pipeline's wall time went.
///
/// Each thread owns its own tree (sharded like the metrics registry), so
/// parallel-search workers time their phases without locks or suppression;
/// PhaseTree::mergedRoot() folds all per-thread trees into one by phase
/// name. Note the merged *shape* can legitimately differ across worker
/// counts — with inline execution a worker phase nests under the caller's
/// phase, with pool execution it is a top-level phase of the worker's
/// tree — which is why the determinism contract covers counters, not
/// phase-tree shape (see DESIGN.md).
///
/// When obs::enabled() is false a ScopedTimer is a single branch and no
/// clock read — the instrumented code paths cost nothing in production
/// runs. When span recording is also on, every finished phase is recorded
/// as a "phase"-category span into the same Chrome-trace timeline.
///
/// Phase names must be string literals (or otherwise outlive the process):
/// spans store the pointer, and every instrumented phase in the tree is
/// named by a literal anyway.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_OBS_TIMER_H
#define SWA_OBS_TIMER_H

#include "obs/Metrics.h"
#include "obs/Span.h"

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace swa {
namespace obs {

/// A tree of timed phases. One instance per thread (see current());
/// phases with the same name under the same parent accumulate (Nanos
/// summed, Count bumped).
class PhaseTree {
public:
  struct Node {
    std::string Name;
    uint64_t Nanos = 0;
    uint64_t Count = 0;
    std::vector<std::unique_ptr<Node>> Children;

    /// Child with the given name, or null. Indexed — no allocation, no
    /// linear scan (the transparent comparator lets string_view probe the
    /// map directly).
    const Node *child(std::string_view ChildName) const;

    /// Child with the given name, created (appended) if absent.
    Node &childOrCreate(std::string_view ChildName);

  private:
    std::map<std::string, size_t, std::less<>> ChildIndex;
  };

  /// The calling thread's tree, created on first use.
  static PhaseTree &current();

  /// Deterministic name-keyed merge of every thread's tree: children keep
  /// first-registration order within each shard, shards fold in creation
  /// order, and Nanos/Count accumulate per (parent, name).
  static Node mergedRoot();

  /// Clears every thread's tree. Must not be called while timers are open
  /// anywhere; quiescent points only.
  static void resetAll();

  /// Indented text rendering of \p Root's children ("name 12.3ms x4").
  static void render(std::ostream &OS, const Node &Root);

  /// Sum over \p Root's top-level phases (what a "coverage" check compares
  /// against wall time).
  static uint64_t totalNanos(const Node &Root);

  /// Enters a phase as a child of the current one.
  void push(std::string_view Name);
  /// Leaves the current phase, attributing \p Nanos to it.
  void pop(uint64_t Nanos);

  const Node &root() const { return Root; }

  /// Clears this tree (back to an empty root). Must not be called while
  /// timers are open on the owning thread.
  void reset();

private:
  Node Root;
  std::vector<Node *> Stack{&Root};
};

/// Serializes \p Root's children as a JSON array of
/// {"name","ns","count","children"} objects (shared by obs::report and
/// RunReport).
void writePhaseChildrenJson(std::ostream &OS, const PhaseTree::Node &Root);

/// RAII phase timer. Inactive (and free apart from one branch) when
/// obs::enabled() is false at construction. \p Phase must be a string
/// literal.
class ScopedTimer {
public:
  explicit ScopedTimer(const char *Phase) {
    if (!enabled())
      return;
    Active = true;
    Name = Phase;
    PhaseTree::current().push(Phase);
    Start = std::chrono::steady_clock::now();
  }

  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

  ~ScopedTimer() {
    if (!Active)
      return;
    auto End = std::chrono::steady_clock::now();
    auto Ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(End - Start)
            .count();
    PhaseTree::current().pop(static_cast<uint64_t>(Ns));
    if (spansEnabled())
      recordSpan(Name, "phase", Start, End);
  }

private:
  bool Active = false;
  const char *Name = nullptr;
  std::chrono::steady_clock::time_point Start;
};

} // namespace obs
} // namespace swa

#endif // SWA_OBS_TIMER_H
