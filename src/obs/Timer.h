//===- obs/Timer.h - RAII phase timers and the phase tree -------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hierarchical phase timing: a ScopedTimer pushes a named phase onto the
/// process-wide PhaseTree on construction and records the elapsed
/// steady-clock nanoseconds on destruction. Nested timers build a tree
/// (build -> compile, simulate, analyze -> criterion, ...), so a report
/// shows where a pipeline's wall time went.
///
/// When obs::enabled() is false a ScopedTimer is a single branch and no
/// clock read — the instrumented code paths cost nothing in production
/// runs.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_OBS_TIMER_H
#define SWA_OBS_TIMER_H

#include "obs/Metrics.h"

#include <chrono>
#include <memory>
#include <string>
#include <vector>

namespace swa {
namespace obs {

/// The tree of timed phases. One global instance; phases with the same
/// name under the same parent accumulate (Nanos summed, Count bumped).
class PhaseTree {
public:
  struct Node {
    std::string Name;
    uint64_t Nanos = 0;
    uint64_t Count = 0;
    std::vector<std::unique_ptr<Node>> Children;

    /// Child with the given name, or null.
    const Node *child(std::string_view ChildName) const;
  };

  static PhaseTree &global();

  /// Enters a phase as a child of the current one.
  void push(std::string_view Name);
  /// Leaves the current phase, attributing \p Nanos to it.
  void pop(uint64_t Nanos);

  const Node &root() const { return Root; }
  /// Sum over the top-level phases (what a "coverage" check compares
  /// against wall time).
  uint64_t totalNanos() const;

  /// Indented text rendering ("name  12.3ms  x4").
  void render(std::ostream &OS) const;

  /// Clears all phases (back to an empty root). Must not be called while
  /// timers are open.
  void reset();

private:
  Node Root;
  std::vector<Node *> Stack{&Root};
};

/// RAII phase timer. Inactive (and free apart from one branch) when
/// obs::enabled() is false at construction.
class ScopedTimer {
public:
  explicit ScopedTimer(std::string_view Phase) {
    if (!enabled())
      return;
    Active = true;
    PhaseTree::global().push(Phase);
    Start = std::chrono::steady_clock::now();
  }

  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

  ~ScopedTimer() {
    if (!Active)
      return;
    auto Ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
    PhaseTree::global().pop(static_cast<uint64_t>(Ns));
  }

private:
  bool Active = false;
  std::chrono::steady_clock::time_point Start;
};

} // namespace obs
} // namespace swa

#endif // SWA_OBS_TIMER_H
