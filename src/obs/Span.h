//===- obs/Span.h - Timed spans with Chrome trace export --------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight duration spans for timeline profiling: a Span captures a
/// steady-clock begin/end, a category, and up to a handful of integer
/// arguments (fingerprints, stop reasons, badness...), and is recorded
/// into a bounded per-thread ring buffer — no locks, no allocation on the
/// hot path once the ring exists. writeChromeTrace() serializes every
/// buffered span as `trace_event` JSON loadable by chrome://tracing and
/// Perfetto; the `tid` of each event is the recording thread's stable
/// shard id, so worker lanes line up across the timeline.
///
/// Spans are gated on their own switch (setSpansEnabled) so metrics can
/// stay on while span recording — the more memory-hungry layer — stays
/// off. When off, Span construction is a single branch. The per-thread
/// rings hold the most recent SpanRing::Capacity spans each; older spans
/// are overwritten and counted in spansDropped(), so a pathological run
/// degrades to a truncated timeline instead of unbounded memory.
///
/// Like every obs layer, spans are pure observers: nothing reads them
/// back, so enabling tracing cannot change a verdict or a trace. Span
/// names and categories must be string literals (or otherwise outlive the
/// process) — the ring stores the pointers, not copies.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_OBS_SPAN_H
#define SWA_OBS_SPAN_H

#include <chrono>
#include <cstdint>
#include <iosfwd>

namespace swa {
namespace obs {

/// Span recording switch. Independent of the metrics switch; false on
/// threads where a ThreadSuppressGuard is alive.
bool spansEnabled();
void setSpansEnabled(bool On);

/// One key/value argument attached to a span. Keys must be string
/// literals.
struct SpanArg {
  const char *Key = nullptr;
  int64_t Value = 0;
};

/// A finished span as stored in the ring. Times are nanoseconds since the
/// process trace epoch (first span-layer use).
struct SpanRecord {
  static constexpr int MaxArgs = 6;

  const char *Name = nullptr;
  const char *Cat = nullptr;
  uint64_t BeginNs = 0;
  uint64_t EndNs = 0;
  SpanArg Args[MaxArgs];
  int NumArgs = 0;
};

/// Records a span whose duration was measured externally (e.g. by a
/// ScopedTimer that is already holding the timestamps). \p Name and \p Cat
/// and every arg key must be string literals.
void recordSpan(const char *Name, const char *Cat,
                std::chrono::steady_clock::time_point Begin,
                std::chrono::steady_clock::time_point End,
                const SpanArg *Args = nullptr, int NumArgs = 0);

/// RAII span: begin on construction, record on destruction. Inactive (one
/// branch) when spansEnabled() is false at construction. Args added
/// between construction and destruction ride along; beyond
/// SpanRecord::MaxArgs they are silently ignored.
class Span {
public:
  explicit Span(const char *Name, const char *Cat = "task") {
    if (!spansEnabled())
      return;
    Active = true;
    this->Name = Name;
    this->Cat = Cat;
    Begin = std::chrono::steady_clock::now();
  }

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  void arg(const char *Key, int64_t Value) {
    if (Active && NumArgs < SpanRecord::MaxArgs)
      Args[NumArgs++] = {Key, Value};
  }

  ~Span() {
    if (!Active)
      return;
    recordSpan(Name, Cat, Begin, std::chrono::steady_clock::now(), Args,
               NumArgs);
  }

private:
  bool Active = false;
  const char *Name = nullptr;
  const char *Cat = nullptr;
  std::chrono::steady_clock::time_point Begin;
  SpanArg Args[SpanRecord::MaxArgs];
  int NumArgs = 0;
};

/// Per-thread ring capacity, in spans. A full ring overwrites its oldest
/// entries (counted in spansDropped()).
constexpr size_t spanRingCapacity() { return size_t(1) << 14; }

/// Spans currently buffered across all threads.
size_t spanCount();

/// Spans overwritten because a ring wrapped, across all threads.
uint64_t spansDropped();

/// Clears every ring (buffered spans and drop counts). Call only at
/// quiescent points.
void resetSpans();

/// Serializes every buffered span (all threads, oldest surviving first per
/// thread) as Chrome `trace_event` JSON: one object with "traceEvents"
/// complete events ("ph":"X", microsecond timestamps) plus thread-name
/// metadata. Loadable by chrome://tracing and Perfetto. Call at quiescent
/// points.
void writeChromeTrace(std::ostream &OS);

} // namespace obs
} // namespace swa

#endif // SWA_OBS_SPAN_H
