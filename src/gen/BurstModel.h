//===- gen/BurstModel.h - The Table-1 burst NSA family ----------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The NSA family behind the Table-1 reproduction: n job automata released
/// simultaneously at t = 0, each contributing exactly one interleavable
/// start step before running to completion at a distinct instant. The
/// reachable interleaving lattice therefore has ~2^n states — the paper's
/// observed model-checking growth rate (x2 per added job) — while a single
/// simulated run has O(n) steps.
///
/// The full IMA component stack interleaves *more* than one step per job
/// at a release instant (ready/dispatch chains), so exhaustive exploration
/// of the full model grows even faster (~10x per job; see
/// tests/McTest.cpp and EXPERIMENTS.md); this family isolates the paper's
/// one-choice-point-per-job regime so the 10..18-job rows are feasible for
/// the baseline at all.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_GEN_BURSTMODEL_H
#define SWA_GEN_BURSTMODEL_H

#include "sa/Network.h"
#include "support/Error.h"

#include <memory>

namespace swa {
namespace gen {

/// Builds the n-job burst network. Job i starts at t = 0 (one internal
/// step), executes for 10 + i ticks, and sets done[i]; the horizon covers
/// all completions. Both the model checker and the simulator run this
/// same network.
Result<std::unique_ptr<sa::Network>> burstNetwork(int Jobs);

/// True when every job's done flag is set in \p FinalStore.
bool burstAllDone(const sa::Network &Net, const std::vector<int64_t> &Store,
                  int Jobs);

} // namespace gen
} // namespace swa

#endif // SWA_GEN_BURSTMODEL_H
