//===- gen/Adversarial.cpp - Adversarial configuration mutators -------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "gen/Adversarial.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace swa;
using namespace swa::gen;
using cfg::TimeValue;

void swa::gen::mutateEqualPriorities(cfg::Config &C) {
  for (cfg::Partition &P : C.Partitions)
    for (cfg::Task &T : P.Tasks)
      T.Priority = 1;
}

void swa::gen::mutateBackToBackWindows(cfg::Config &C, Rng &R) {
  // Split each window into a chain of back-to-back pieces covering the
  // same interval. The union per partition (and so per core) is
  // unchanged, which keeps the mutation validity-preserving while making
  // every internal boundary a partition-switch instant.
  for (cfg::Partition &P : C.Partitions) {
    std::vector<cfg::Window> Out;
    for (const cfg::Window &W : P.Windows) {
      TimeValue Len = W.End - W.Start;
      int Pieces = static_cast<int>(R.uniformInt(2, 4));
      if (Len < Pieces) {
        Out.push_back(W);
        continue;
      }
      TimeValue At = W.Start;
      for (int I = 0; I < Pieces; ++I) {
        TimeValue Next = I + 1 == Pieces ? W.End : At + Len / Pieces;
        Out.push_back({At, Next});
        At = Next;
      }
    }
    P.Windows = std::move(Out);
  }
}

void swa::gen::mutateDegeneratePeriods(cfg::Config &C, Rng &R) {
  for (cfg::Partition &P : C.Partitions)
    for (cfg::Task &T : P.Tasks)
      if (R.chance(0.3)) {
        T.Deadline = T.Period;
        for (TimeValue &W : T.Wcet)
          W = T.Period; // Zero laxity: WCET == deadline == period.
      }
}

void swa::gen::mutateNearOverflowHyperperiod(cfg::Config &C, Rng &R) {
  Result<TimeValue> L = C.checkedHyperperiod();
  if (!L.ok() || *L <= 0)
    return;
  // Uniform-scale every time value. lcm(F*p_i) == F*lcm(p_i), so the
  // hyperperiod lands exactly at F*L — aimed just under the engine's
  // TimeInfinity ceiling (int64max/4) where naive arithmetic overflows.
  TimeValue Target = R.uniformInt(1000000000000000LL,    // 1e15
                                  500000000000000000LL); // 5e17
  TimeValue F = Target / *L;
  if (F <= 1)
    return;
  for (cfg::Partition &P : C.Partitions) {
    for (cfg::Task &T : P.Tasks) {
      T.Period *= F;
      T.Deadline *= F;
      for (TimeValue &W : T.Wcet)
        W *= F;
    }
    for (cfg::Window &W : P.Windows) {
      W.Start *= F;
      W.End *= F;
    }
  }
  for (cfg::Message &M : C.Messages) {
    M.MemDelay *= F;
    M.NetDelay *= F;
  }
}

void swa::gen::mutateZeroWcet(cfg::Config &C, Rng &R) {
  if (C.Partitions.empty())
    return;
  cfg::Partition &P = C.Partitions[R.index(C.Partitions.size())];
  if (P.Tasks.empty())
    return;
  cfg::Task &T = P.Tasks[R.index(P.Tasks.size())];
  for (TimeValue &W : T.Wcet)
    W = 0;
}

cfg::Config swa::gen::adversarialConfig(Rng &R) {
  cfg::Config C;
  C.Name = "adversarial";
  C.NumCoreTypes = static_cast<int>(R.uniformInt(1, 2));

  int NumCores = static_cast<int>(R.uniformInt(1, 3));
  for (int I = 0; I < NumCores; ++I) {
    cfg::Core Core;
    Core.Name = formatString("c%d", I);
    Core.Module = static_cast<int>(R.uniformInt(0, 1));
    Core.CoreType = static_cast<int>(R.index(
        static_cast<size_t>(C.NumCoreTypes)));
    C.Cores.push_back(std::move(Core));
  }

  // Harmonic menu keeps the hyperperiod the max period, so small
  // instances stay model-checkable.
  const TimeValue Menu[] = {8, 16, 32, 64};
  int NumParts = static_cast<int>(R.uniformInt(1, 4));
  for (int PI = 0; PI < NumParts; ++PI) {
    cfg::Partition P;
    P.Name = formatString("p%d", PI);
    P.Core = static_cast<int>(R.index(C.Cores.size()));
    double Pick = R.uniformDouble();
    P.Scheduler = Pick < 0.7   ? cfg::SchedulerKind::FPPS
                  : Pick < 0.9 ? cfg::SchedulerKind::FPNPS
                               : cfg::SchedulerKind::EDF;
    int NumTasks = static_cast<int>(R.uniformInt(1, 4));
    for (int TI = 0; TI < NumTasks; ++TI) {
      cfg::Task T;
      T.Name = formatString("t%d", TI);
      T.Priority = static_cast<int>(R.uniformInt(1, 5)); // Ties likely.
      T.Period = Menu[R.index(4)];
      TimeValue MaxW = std::max<TimeValue>(1, T.Period / 4);
      for (int CT = 0; CT < C.NumCoreTypes; ++CT)
        T.Wcet.push_back(R.uniformInt(1, MaxW));
      TimeValue Floor = *std::max_element(T.Wcet.begin(), T.Wcet.end());
      T.Deadline = R.uniformInt(Floor, T.Period);
      P.Tasks.push_back(std::move(T));
    }
    C.Partitions.push_back(std::move(P));
  }

  // Windows: chop each core's hyperperiod into round-robin slices over
  // its partitions — dense, back-to-back across partitions, and
  // non-overlapping per core by construction.
  TimeValue L = C.hyperperiod();
  for (size_t Core = 0; Core < C.Cores.size(); ++Core) {
    std::vector<cfg::Partition *> Owners;
    for (cfg::Partition &P : C.Partitions)
      if (P.Core == static_cast<int>(Core))
        Owners.push_back(&P);
    if (Owners.empty())
      continue;
    if (Owners.size() == 1 && R.chance(0.5)) {
      // Sole partition gets the whole hyperperiod (the shape where the
      // analytic RTA oracle applies).
      Owners[0]->Windows.push_back({0, L});
      continue;
    }
    TimeValue Slice = std::max<TimeValue>(
        1, L / static_cast<TimeValue>(Owners.size() * 4));
    TimeValue At = 0;
    size_t Turn = 0;
    while (At < L) {
      TimeValue End = std::min<TimeValue>(L, At + Slice);
      Owners[Turn % Owners.size()]->Windows.push_back({At, End});
      At = End;
      ++Turn;
    }
  }

  // Occasional same-period message pairs.
  if (R.chance(0.3)) {
    std::vector<cfg::TaskRef> All;
    for (size_t PI = 0; PI < C.Partitions.size(); ++PI)
      for (size_t TI = 0; TI < C.Partitions[PI].Tasks.size(); ++TI)
        All.push_back({static_cast<int>(PI), static_cast<int>(TI)});
    int Tries = static_cast<int>(R.uniformInt(1, 3));
    for (int I = 0; I < Tries && All.size() >= 2; ++I) {
      cfg::TaskRef A = All[R.index(All.size())];
      cfg::TaskRef B = All[R.index(All.size())];
      if (A == B || C.taskOf(A).Period != C.taskOf(B).Period)
        continue;
      cfg::Message M;
      M.Sender = A;
      M.Receiver = B;
      M.MemDelay = R.uniformInt(0, 2);
      M.NetDelay = R.uniformInt(0, 3);
      C.Messages.push_back(M);
    }
  }

  // Adversarial mutations, each with independent probability. Order
  // matters only for readability; every mutator preserves validity
  // except mutateZeroWcet, which is the campaign's invalid-input probe.
  if (R.chance(0.25))
    mutateEqualPriorities(C);
  if (R.chance(0.25))
    mutateBackToBackWindows(C, R);
  if (R.chance(0.2))
    mutateDegeneratePeriods(C, R);
  if (R.chance(0.1))
    mutateNearOverflowHyperperiod(C, R);
  if (R.chance(0.05))
    mutateZeroWcet(C, R);
  return C;
}
