//===- gen/Adversarial.h - Adversarial configuration mutators ---*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration generators and mutators aimed at the engine's edge
/// cases, used by the differential-testing campaign (src/difftest/).
/// Where gen/Workload.h manufactures *plausible* avionics workloads,
/// this header manufactures *hostile* ones: equal-priority ties that
/// stress deterministic tie-breaking, back-to-back windows that make
/// partition switches coincide with task events, degenerate periods
/// (deadline == period == WCET), and hyperperiods close to the engine's
/// TimeInfinity ceiling that would overflow naive time arithmetic.
///
/// One mutator — zero-WCET tasks — deliberately produces *invalid*
/// configurations (cfg::Config::validate requires WCET > 0): the
/// campaign feeds those to the full pipeline to assert they are rejected
/// with a structured error rather than crashing or yielding a verdict.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_GEN_ADVERSARIAL_H
#define SWA_GEN_ADVERSARIAL_H

#include "config/Config.h"
#include "support/Rng.h"

namespace swa {
namespace gen {

/// Draws a small random configuration (1-3 cores, 1-4 partitions, 1-4
/// tasks each, occasional messages and split windows) and then applies a
/// random subset of the adversarial mutators below. The result usually
/// validates; the zero-WCET mutator (applied with low probability) makes
/// it deliberately invalid, which callers detect via validate().
cfg::Config adversarialConfig(Rng &R);

/// Gives every task in the configuration the same priority, forcing the
/// scheduler model through its deterministic tie-break path everywhere.
void mutateEqualPriorities(cfg::Config &C);

/// Rewrites every partition's windows into a chain of back-to-back
/// windows (end[i] == start[i+1]) covering the original span, so
/// partition-switch events coincide exactly with window boundaries.
void mutateBackToBackWindows(cfg::Config &C, Rng &R);

/// Collapses random tasks to the degenerate shape deadline == period ==
/// WCET (100% utilization for that task, zero laxity).
void mutateDegeneratePeriods(cfg::Config &C, Rng &R);

/// Scales all periods/deadlines/windows so the hyperperiod lands within
/// a few orders of magnitude of TimeInfinity, probing the checked time
/// arithmetic (overflow must surface as a structured error, never UB).
void mutateNearOverflowHyperperiod(cfg::Config &C, Rng &R);

/// Sets one random task's WCET to zero — an *invalid* configuration by
/// cfg::Config::validate. The campaign asserts clean structured
/// rejection, not a verdict.
void mutateZeroWcet(cfg::Config &C, Rng &R);

} // namespace gen
} // namespace swa

#endif // SWA_GEN_ADVERSARIAL_H
