//===- gen/BurstModel.cpp - The Table-1 burst NSA family --------------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "gen/BurstModel.h"

#include "sa/Compile.h"
#include "sa/NetworkBuilder.h"
#include "sa/Template.h"
#include "support/StringUtils.h"

using namespace swa;
using namespace swa::gen;

Result<std::unique_ptr<sa::Network>> swa::gen::burstNetwork(int Jobs) {
  sa::NetworkBuilder NB;
  if (Error E = NB.addGlobals(
          formatString("int done[%d];", Jobs > 0 ? Jobs : 1)))
    return E;

  sa::TemplateBuilder TB("BurstJob", NB.globalDecls());
  TB.params("int id, int wcet");
  TB.decls("clock e;");
  // Release -> Running is the single interleavable step at t = 0; the
  // completion instants (10 + id) are pairwise distinct, so they add no
  // further interleaving.
  TB.location("Release")
      .location("Running", "e <= wcet")
      .location("Done")
      .initial("Release");
  TB.edge("Release", "Running", {.Update = "e = 0"});
  TB.edge("Running", "Done",
          {.Guard = "e >= wcet", .Update = "done[id] = 1"});
  Result<std::unique_ptr<sa::Template>> T = TB.build();
  if (!T.ok())
    return T.takeError();

  for (int I = 0; I < Jobs; ++I) {
    Result<sa::Automaton *> A = NB.addInstance(
        **T, formatString("job%d", I),
        {{"id", {I}}, {"wcet", {10 + I}}});
    if (!A.ok())
      return A.takeError();
  }
  Result<std::unique_ptr<sa::Network>> Net = NB.finish();
  if (!Net.ok())
    return Net;
  if (Error E = sa::compileNetwork(**Net))
    return E;
  (*Net)->Meta["horizon"] = 10 + Jobs + 5;
  return Net;
}

bool swa::gen::burstAllDone(const sa::Network &Net,
                            const std::vector<int64_t> &Store, int Jobs) {
  int Base = Net.slotOf("done");
  if (Base < 0)
    return false;
  for (int I = 0; I < Jobs; ++I)
    if (Store[static_cast<size_t>(Base + I)] == 0)
      return false;
  return true;
}
