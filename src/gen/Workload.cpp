//===- gen/Workload.cpp - Configuration generators --------------------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "gen/Workload.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace swa;
using namespace swa::gen;

cfg::Config swa::gen::table1Config(int NumJobs) {
  assert(NumJobs > 0 && "need at least one job");
  cfg::Config C;
  C.Name = formatString("table1-%d", NumJobs);
  C.NumCoreTypes = 1;
  cfg::TimeValue Period = 100;
  for (int I = 0; I < NumJobs; ++I) {
    C.Cores.push_back({formatString("core%d", I), I / 2, 0});
    cfg::Partition P;
    P.Name = formatString("p%d", I);
    P.Scheduler = cfg::SchedulerKind::FPPS;
    P.Core = I;
    P.Windows.push_back({0, Period});
    // Distinct WCETs so the concurrent jobs finish at distinct instants;
    // the simultaneous releases at t = 0 are what MC must interleave.
    P.Tasks.push_back(
        {formatString("t%d", I), 1, {10 + (I % 7)}, Period, Period});
    C.Partitions.push_back(std::move(P));
  }
  return C;
}

std::vector<double> swa::gen::uunifast(Rng &R, int N, double Total) {
  std::vector<double> U(static_cast<size_t>(N));
  double Sum = Total;
  for (int I = 0; I < N - 1; ++I) {
    double Next =
        Sum * std::pow(R.uniformDouble(),
                       1.0 / static_cast<double>(N - 1 - I));
    U[static_cast<size_t>(I)] = Sum - Next;
    Sum = Next;
  }
  U[static_cast<size_t>(N - 1)] = Sum;
  return U;
}

cfg::Config swa::gen::industrialConfig(const IndustrialParams &Params) {
  Rng R(Params.Seed);
  cfg::Config C;
  C.Name = formatString("industrial-seed%llu",
                        static_cast<unsigned long long>(Params.Seed));
  C.NumCoreTypes = 2;

  int NumCores = Params.Modules * Params.CoresPerModule;
  for (int M = 0; M < Params.Modules; ++M)
    for (int K = 0; K < Params.CoresPerModule; ++K)
      C.Cores.push_back({formatString("m%dc%d", M, K), M,
                         /*CoreType=*/M % 2});

  assert(!Params.Periods.empty() && "period menu must be non-empty");

  // Partitions: per core, split the core utilization over the partitions
  // with UUniFast, then each partition's utilization over its tasks.
  for (int Core = 0; Core < NumCores; ++Core) {
    std::vector<double> PartU =
        uunifast(R, Params.PartitionsPerCore, Params.CoreUtilization);
    for (int PI = 0; PI < Params.PartitionsPerCore; ++PI) {
      cfg::Partition Part;
      Part.Name = formatString("p%d_%d", Core, PI);
      Part.Core = Core;
      Part.Scheduler = cfg::SchedulerKind::FPPS;

      int NumTasks = static_cast<int>(
          R.uniformInt(Params.MinTasksPerPartition,
                       Params.MaxTasksPerPartition));
      std::vector<double> TaskU =
          uunifast(R, NumTasks, PartU[static_cast<size_t>(PI)]);
      for (int T = 0; T < NumTasks; ++T) {
        cfg::Task Task;
        Task.Name = formatString("t%d_%d_%d", Core, PI, T);
        Task.Period =
            Params.Periods[R.index(Params.Periods.size())];
        cfg::TimeValue Cost = static_cast<cfg::TimeValue>(
            TaskU[static_cast<size_t>(T)] *
            static_cast<double>(Task.Period));
        Task.Deadline = Task.Period;
        if (Cost < 1)
          Cost = 1;
        if (Cost > Task.Deadline)
          Cost = Task.Deadline;
        // Both core types; the second type is 25% slower.
        cfg::TimeValue SlowCost =
            std::min(Task.Deadline, Cost + (Cost + 3) / 4);
        Task.Wcet = {Cost, SlowCost};
        // Rate-monotonic priorities (shorter period = higher priority),
        // disambiguated by index.
        Task.Priority = static_cast<int>(
            1000000 / Task.Period * 100 + (NumTasks - T));
        Part.Tasks.push_back(std::move(Task));
      }
      C.Partitions.push_back(std::move(Part));
    }
  }

  // Window synthesis: per core, carve each minor frame (the shortest
  // period used on that core) into utilization-proportional slices. The
  // hyperperiod is the lcm of the periods actually drawn from the menu
  // (not the menu's maximum: a seed may skip the longest period).
  cfg::TimeValue L = C.hyperperiod();
  for (int Core = 0; Core < NumCores; ++Core) {
    std::vector<int> Parts;
    cfg::TimeValue Minor = L;
    for (size_t P = 0; P < C.Partitions.size(); ++P) {
      if (C.Partitions[P].Core != Core)
        continue;
      Parts.push_back(static_cast<int>(P));
      for (const cfg::Task &T : C.Partitions[P].Tasks)
        Minor = std::min(Minor, T.Period);
    }
    if (Parts.empty())
      continue;

    // Raw slice lengths with slack, then scale to fit the minor frame.
    std::vector<double> Raw;
    double RawSum = 0;
    for (int P : Parts) {
      double U = C.partitionUtilization(P);
      double Slice =
          std::max(1.0, U * static_cast<double>(Minor) *
                            Params.WindowBoost);
      Raw.push_back(Slice);
      RawSum += Slice;
    }
    double Scale =
        RawSum > static_cast<double>(Minor)
            ? static_cast<double>(Minor) / RawSum
            : 1.0;

    cfg::TimeValue Cursor = 0;
    for (size_t I = 0; I < Parts.size(); ++I) {
      cfg::TimeValue Len = std::max<cfg::TimeValue>(
          1, static_cast<cfg::TimeValue>(Raw[I] * Scale));
      if (Cursor + Len > Minor)
        Len = Minor - Cursor;
      if (Len <= 0)
        break;
      // Repeat the slice in every minor frame of the hyperperiod.
      for (cfg::TimeValue Off = 0; Off < L; Off += Minor)
        C.Partitions[static_cast<size_t>(Parts[I])].Windows.push_back(
            {Off + Cursor, Off + Cursor + Len});
      Cursor += Len;
    }
  }

  // Message DAG: each task may receive from an earlier task with the same
  // period (earlier in global order keeps the graph acyclic).
  struct TaskSite {
    cfg::TaskRef Ref;
    cfg::TimeValue Period;
  };
  std::vector<TaskSite> Sites;
  for (size_t P = 0; P < C.Partitions.size(); ++P)
    for (size_t T = 0; T < C.Partitions[P].Tasks.size(); ++T)
      Sites.push_back({{static_cast<int>(P), static_cast<int>(T)},
                       C.Partitions[P].Tasks[T].Period});
  for (size_t I = 1; I < Sites.size(); ++I) {
    if (!R.chance(Params.MessageProbability))
      continue;
    // Find a same-period predecessor.
    std::vector<size_t> Candidates;
    for (size_t J = 0; J < I; ++J)
      if (Sites[J].Period == Sites[I].Period &&
          !(Sites[J].Ref.Partition == Sites[I].Ref.Partition &&
            Sites[J].Ref.Task == Sites[I].Ref.Task))
        Candidates.push_back(J);
    if (Candidates.empty())
      continue;
    size_t J = Candidates[R.index(Candidates.size())];
    cfg::Message M;
    M.Sender = Sites[J].Ref;
    M.Receiver = Sites[I].Ref;
    M.MemDelay = R.uniformInt(1, 3);
    M.NetDelay = R.uniformInt(5, 20);
    C.Messages.push_back(M);
  }
  return C;
}

cfg::Config swa::gen::industrialConfigWithJobs(int64_t TargetJobs,
                                               uint64_t Seed) {
  // Average jobs per task with the default period menu {250,500,1000,2000}
  // and hyperperiod 2000: mean(L/P) = (8+4+2+1)/4 = 3.75.
  IndustrialParams P;
  P.Seed = Seed;
  double MeanTasksPerPartition =
      (P.MinTasksPerPartition + P.MaxTasksPerPartition) / 2.0;
  double JobsPerPartition = MeanTasksPerPartition * 3.75;
  int NumCores = P.Modules * P.CoresPerModule;
  int PerCore = static_cast<int>(
      std::llround(static_cast<double>(TargetJobs) /
                   (JobsPerPartition * NumCores)));
  P.PartitionsPerCore = std::max(1, PerCore);
  return industrialConfig(P);
}
