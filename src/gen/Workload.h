//===- gen/Workload.h - Configuration generators ----------------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic configuration generators standing in for the paper's
/// proprietary industrial avionics configurations (see DESIGN.md §3):
///
///  * table1Config: the Table-1 family — n independent single-task
///    partitions on n cores releasing simultaneously, which maximizes the
///    number of concurrent events and therefore the interleaving explosion
///    model checking suffers from;
///  * uunifast: the classic utilization-distribution algorithm;
///  * industrialConfig: module/core/partition/task structures of the scale
///    the paper reports (~12500 jobs per hyperperiod), with harmonic
///    periods, rate-monotonic priorities, utilization-proportional window
///    synthesis, and a random same-period message DAG.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_GEN_WORKLOAD_H
#define SWA_GEN_WORKLOAD_H

#include "config/Config.h"
#include "support/Rng.h"

#include <vector>

namespace swa {
namespace gen {

/// Builds the Table-1 experiment configuration with \p NumJobs jobs per
/// hyperperiod (one job per task, one task per partition, one partition
/// per core; all windows span the whole hyperperiod).
cfg::Config table1Config(int NumJobs);

/// UUniFast: \p N task utilizations summing to \p Total, unbiased.
std::vector<double> uunifast(Rng &R, int N, double Total);

struct IndustrialParams {
  int Modules = 8;
  int CoresPerModule = 2;
  int PartitionsPerCore = 3;
  int MinTasksPerPartition = 3;
  int MaxTasksPerPartition = 8;
  /// Harmonic period menu in ticks (1 tick = 0.1 ms at the paper's scale).
  std::vector<cfg::TimeValue> Periods = {250, 500, 1000, 2000};
  /// Target utilization per core (shared by its partitions).
  double CoreUtilization = 0.45;
  /// Probability that a task receives a message from some earlier
  /// same-period task.
  double MessageProbability = 0.25;
  /// Window over-provisioning factor (window share = util * boost).
  double WindowBoost = 1.7;
  uint64_t Seed = 1;
};

/// Generates an industrial-scale configuration. The result always
/// validates; schedulability depends on the utilization and windows.
cfg::Config industrialConfig(const IndustrialParams &Params);

/// Convenience: picks PartitionsPerCore / task counts so the configuration
/// has roughly \p TargetJobs jobs per hyperperiod.
cfg::Config industrialConfigWithJobs(int64_t TargetJobs, uint64_t Seed);

} // namespace gen
} // namespace swa

#endif // SWA_GEN_WORKLOAD_H
