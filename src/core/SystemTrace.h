//===- core/SystemTrace.h - NSA trace -> system trace -----------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates an NSA synchronization trace into the paper's system
/// operation trace: events <Type, Src, t> with Type in {EX, PR, FIN}
/// (§2.1). EX corresponds to a synchronization on exec[g], PR on
/// preempt[g]; FIN is a finished[p] synchronization attributed to the
/// initiating task automaton. READY events (job became ready) are kept as
/// well — they are not part of the formal trace but feed latency
/// statistics.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_CORE_SYSTEMTRACE_H
#define SWA_CORE_SYSTEMTRACE_H

#include "core/InstanceBuilder.h"
#include "nsa/Event.h"

#include <cstdint>
#include <vector>

namespace swa {
namespace core {

enum class SysEventType { EX, PR, FIN, READY };

const char *sysEventTypeName(SysEventType T);

struct SysEvent {
  SysEventType Type;
  int TaskGid = -1;
  int64_t Time = 0;
};

/// System operation trace: events in generation order.
using SystemTrace = std::vector<SysEvent>;

/// Maps the NSA trace of \p Model onto the system trace.
SystemTrace mapTrace(const BuiltModel &Model, const nsa::Trace &Events);

} // namespace core
} // namespace swa

#endif // SWA_CORE_SYSTEMTRACE_H
