//===- core/InstanceBuilder.cpp - Algorithm 1: config -> NSA ---------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "core/InstanceBuilder.h"

#include "models/ModelLibrary.h"
#include "obs/Metrics.h"
#include "obs/Timer.h"
#include "sa/Compile.h"
#include "sa/NetworkBuilder.h"
#include "sa/Validate.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace swa;
using namespace swa::core;

namespace {

/// The per-core window table exactly as buildModel feeds it to the
/// CoreScheduler instance: windows of all partitions on core \p C,
/// sorted by start, with the non-empty placeholder row when the core
/// hosts partitions but no windows. Shared by buildModel and
/// rebindWindows so a rebind reproduces the build bit-for-bit.
struct CoreWindowTable {
  bool HasPartition = false;
  int64_t NumWindows = 0;
  std::vector<int64_t> Starts, Ends, Parts;
};

CoreWindowTable coreWindowTable(const cfg::Config &Config, size_t C) {
  struct Win {
    cfg::TimeValue Start, End;
    int64_t Part;
  };
  CoreWindowTable Out;
  std::vector<Win> Wins;
  for (size_t P = 0; P < Config.Partitions.size(); ++P) {
    if (Config.Partitions[P].Core != static_cast<int>(C))
      continue;
    Out.HasPartition = true;
    for (const cfg::Window &W : Config.Partitions[P].Windows)
      Wins.push_back({W.Start, W.End, static_cast<int64_t>(P)});
  }
  if (!Out.HasPartition)
    return Out;
  std::sort(Wins.begin(), Wins.end(),
            [](const Win &A, const Win &B) { return A.Start < B.Start; });
  for (const Win &W : Wins) {
    Out.Starts.push_back(W.Start);
    Out.Ends.push_back(W.End);
    Out.Parts.push_back(W.Part);
  }
  Out.NumWindows = static_cast<int64_t>(Wins.size());
  if (Wins.empty()) {
    Out.Starts.push_back(0);
    Out.Ends.push_back(0);
    Out.Parts.push_back(0);
  }
  return Out;
}

} // namespace

Result<BuiltModel> swa::core::buildModel(const cfg::Config &Config,
                                         bool PublishMetrics,
                                         BytecodeCache *Bytecode) {
  obs::ScopedTimer Timer("build");
  if (Error E = Config.validate())
    return E.withContext("invalid configuration");

  BuiltModel Out;
  Out.Config = Config;

  int NT = Config.numTasks();
  int NP = static_cast<int>(Config.Partitions.size());
  int NL = static_cast<int>(Config.Messages.size());
  cfg::TimeValue L = Config.hyperperiod();

  sa::NetworkBuilder NB;
  if (Error E = NB.addGlobals(models::globalDeclsSource(NT, NP, NL)))
    return E;

  Result<std::unique_ptr<models::ModelLibrary>> LibOrErr =
      models::ModelLibrary::create(NB.globalDecls());
  if (!LibOrErr.ok())
    return LibOrErr.takeError();
  models::ModelLibrary &Lib = **LibOrErr;

  // Input links per task (message indices where the task receives).
  std::vector<std::vector<int64_t>> InLinks(static_cast<size_t>(NT));
  for (size_t M = 0; M < Config.Messages.size(); ++M) {
    int RGid = Config.globalTaskId(Config.Messages[M].Receiver);
    InLinks[static_cast<size_t>(RGid)].push_back(static_cast<int64_t>(M));
  }

  Out.TaskAutomaton.assign(static_cast<size_t>(NT), -1);
  Out.SchedulerAutomaton.assign(static_cast<size_t>(NP), -1);

  int AutCount = 0;
  for (size_t P = 0; P < Config.Partitions.size(); ++P) {
    const cfg::Partition &Part = Config.Partitions[P];
    int Off = Config.globalTaskId({static_cast<int>(P), 0});

    for (size_t T = 0; T < Part.Tasks.size(); ++T) {
      const cfg::Task &Task = Part.Tasks[T];
      cfg::TaskRef Ref{static_cast<int>(P), static_cast<int>(T)};
      int Gid = Config.globalTaskId(Ref);

      std::vector<int64_t> In = InLinks[static_cast<size_t>(Gid)];
      int64_t NIn = static_cast<int64_t>(In.size());
      if (In.empty())
        In.push_back(0); // Array params must be non-empty; n_in==0 masks it.

      sa::NetworkBuilder::ParamMap Params = {
          {"gid", {Gid}},
          {"part", {static_cast<int64_t>(P)}},
          {"wcet", {Config.boundWcet(Ref)}},
          {"period", {Task.Period}},
          {"deadline", {Task.Deadline}},
          {"priority", {static_cast<int64_t>(Task.Priority)}},
          {"n_in", {NIn}},
          {"in_links", In},
      };
      std::string Name =
          formatString("task_%zu_%zu_%s", P, T, Task.Name.c_str());
      Result<sa::Automaton *> A = NB.addInstance(Lib.task(), Name, Params);
      if (!A.ok())
        return A.takeError();
      (*A)->Meta["gid"] = Gid;
      (*A)->Meta["partition"] = static_cast<int64_t>(P);
      (*A)->Meta["kind"] = 1; // Task.
      Out.TaskAutomaton[static_cast<size_t>(Gid)] = AutCount++;
    }

    sa::NetworkBuilder::ParamMap TsParams = {
        {"part", {static_cast<int64_t>(P)}},
        {"off", {static_cast<int64_t>(Off)}},
        {"nt", {static_cast<int64_t>(Part.Tasks.size())}},
    };
    Result<sa::Automaton *> TS = NB.addInstance(
        Lib.scheduler(Part.Scheduler), formatString("ts_%zu", P), TsParams);
    if (!TS.ok())
      return TS.takeError();
    (*TS)->Meta["partition"] = static_cast<int64_t>(P);
    (*TS)->Meta["kind"] = 2; // Task scheduler.
    Out.SchedulerAutomaton[P] = AutCount++;
  }

  // Core schedulers: one per core that hosts at least one partition.
  for (size_t C = 0; C < Config.Cores.size(); ++C) {
    CoreWindowTable WT = coreWindowTable(Config, C);
    if (!WT.HasPartition)
      continue;
    sa::NetworkBuilder::ParamMap CsParams = {
        {"nw", {WT.NumWindows}}, {"w_start", WT.Starts},
        {"w_end", WT.Ends},      {"w_part", WT.Parts},
        {"hyper", {L}},
    };
    Result<sa::Automaton *> CS =
        NB.addInstance(Lib.coreScheduler(), formatString("cs_%zu", C),
                       CsParams);
    if (!CS.ok())
      return CS.takeError();
    (*CS)->Meta["core"] = static_cast<int64_t>(C);
    (*CS)->Meta["kind"] = 3; // Core scheduler.
    ++AutCount;
  }

  // Virtual links: one per message.
  for (size_t M = 0; M < Config.Messages.size(); ++M) {
    const cfg::Message &Msg = Config.Messages[M];
    sa::NetworkBuilder::ParamMap VlParams = {
        {"link", {static_cast<int64_t>(M)}},
        {"src", {static_cast<int64_t>(Config.globalTaskId(Msg.Sender))}},
        {"delay", {Config.effectiveDelay(Msg)}},
    };
    Result<sa::Automaton *> VL =
        NB.addInstance(Lib.virtualLink(), formatString("vl_%zu", M),
                       VlParams);
    if (!VL.ok())
      return VL.takeError();
    (*VL)->Meta["link"] = static_cast<int64_t>(M);
    (*VL)->Meta["kind"] = 4; // Virtual link.
    ++AutCount;
  }

  Result<std::unique_ptr<sa::Network>> Net = NB.finish();
  if (!Net.ok())
    return Net.takeError();
  Out.Net = Net.takeValue();
  // Structural sanity (catches wiring mistakes, e.g. from user-supplied
  // component models), then compile all USL code to bytecode.
  if (Error E = sa::checkNetwork(*Out.Net))
    return E.withContext("model validation");
  // Same-shape configs compile to identical bytecode (the window tables
  // are data, not code), so consult the shape-keyed cache before paying
  // for compilation. Inject falls back to compiling defensively if the
  // cached site walk somehow disagrees.
  std::shared_ptr<const sa::NetworkBytecode> Cached;
  cfg::Fingerprint Shape;
  if (Bytecode) {
    Shape = cfg::fingerprintShape(Config);
    Cached = Bytecode->lookup(Shape);
  }
  if (!Cached || !sa::injectBytecode(*Out.Net, *Cached)) {
    if (Error E = sa::compileNetwork(*Out.Net))
      return E;
    if (Bytecode) {
      auto BC = std::make_shared<sa::NetworkBytecode>();
      sa::extractBytecode(*Out.Net, *BC);
      Bytecode->insert(Shape, std::move(BC));
    }
  }
  Out.Net->Meta["horizon"] = L;
  Out.Net->Meta["numTasks"] = NT;

  if (PublishMetrics && obs::enabled()) {
    obs::Registry &Reg = obs::Registry::global();
    Reg.counter("core.models.built").add(1);
    Reg.counter("core.automata.instantiated")
        .add(static_cast<uint64_t>(Out.Net->Automata.size()));
  }

  Out.ReadyBase = Out.Net->channelId("ready");
  Out.FinishedBase = Out.Net->channelId("finished");
  Out.WakeupBase = Out.Net->channelId("wakeup");
  Out.SleepBase = Out.Net->channelId("sleep");
  Out.ExecBase = Out.Net->channelId("exec");
  Out.PreemptBase = Out.Net->channelId("preempt");
  Out.SendBase = Out.Net->channelId("send");
  Out.DeliverBase = Out.Net->channelId("deliver");
  Out.IsFailedSlot = Out.Net->slotOf("is_failed");
  return Out;
}

WindowRebinder swa::core::makeWindowRebinder(const BuiltModel &Model) {
  WindowRebinder RB;
  if (!Model.Net)
    return RB;
  for (const auto &A : Model.Net->Automata) {
    if (A->metaOr("kind", 0) != 3) // CoreScheduler instances only.
      continue;
    WindowRebinder::CoreSlots S;
    S.Core = static_cast<int>(A->metaOr("core", -1));
    S.StartSlot = static_cast<int>(A->metaOr("carr.w_start", -1));
    S.EndSlot = static_cast<int>(A->metaOr("carr.w_end", -1));
    S.PartSlot = static_cast<int>(A->metaOr("carr.w_part", -1));
    if (S.Core < 0 || S.StartSlot < 0 || S.EndSlot < 0 || S.PartSlot < 0)
      return RB; // foreign model: no patchable slots recorded
    CoreWindowTable WT =
        coreWindowTable(Model.Config, static_cast<size_t>(S.Core));
    S.NumWindows = WT.NumWindows;
    RB.Cores.push_back(S);
  }
  RB.Valid = !RB.Cores.empty();
  return RB;
}

Error swa::core::rebindWindows(BuiltModel &Model, const WindowRebinder &RB,
                               const cfg::Config &NewConfig) {
  if (!RB.Valid)
    return Error::failure("model has no window rebind plan");
  // Mirror buildModel: an invalid config must fail here too, or a reused
  // model would accept configs a fresh build rejects.
  if (Error E = NewConfig.validate())
    return E.withContext("invalid configuration");

  auto &Arrays = Model.Net->Bind.ConstArrays;
  size_t UsedCores = 0;
  for (size_t C = 0; C < NewConfig.Cores.size(); ++C) {
    CoreWindowTable WT = coreWindowTable(NewConfig, C);
    if (!WT.HasPartition)
      continue;
    ++UsedCores;
    const WindowRebinder::CoreSlots *S = nullptr;
    for (const WindowRebinder::CoreSlots &E : RB.Cores)
      if (E.Core == static_cast<int>(C)) {
        S = &E;
        break;
      }
    // nw is folded into bytecode; only a same-shape config (equal
    // per-core window counts, same used-core set) can be rebound.
    if (!S || WT.NumWindows != S->NumWindows)
      return Error::failure("window rebind shape mismatch on core " +
                            std::to_string(C));
    // The VM reads const arrays element-wise through the outer table
    // (never caches inner pointers across runs), so assigning the inner
    // vectors retargets every compiled w_* access.
    Arrays[static_cast<size_t>(S->StartSlot)] = std::move(WT.Starts);
    Arrays[static_cast<size_t>(S->EndSlot)] = std::move(WT.Ends);
    Arrays[static_cast<size_t>(S->PartSlot)] = std::move(WT.Parts);
  }
  if (UsedCores != RB.Cores.size())
    return Error::failure("window rebind used-core set mismatch");
  Model.Config = NewConfig;
  return Error::success();
}
