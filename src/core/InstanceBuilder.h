//===- core/InstanceBuilder.h - Algorithm 1: config -> NSA ------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algorithm 1 of the paper: for a system configuration, construct the NSA
/// instance — one Task automaton per task, one task-scheduler automaton per
/// partition (matching its scheduling algorithm), one core-scheduler
/// automaton per used core, and one virtual-link automaton per message,
/// wired through the shared variables and channels of the general model.
///
/// The result keeps the channel-table bases and task-to-automaton mapping
/// needed to translate NSA synchronization traces back into system
/// operation traces (EX/PR/FIN events per job, §2.1).
///
//===----------------------------------------------------------------------===//

#ifndef SWA_CORE_INSTANCEBUILDER_H
#define SWA_CORE_INSTANCEBUILDER_H

#include "config/Config.h"
#include "sa/Network.h"

#include <memory>
#include <vector>

namespace swa {
namespace core {

/// A bound model instance for one configuration.
struct BuiltModel {
  std::unique_ptr<sa::Network> Net;
  cfg::Config Config;

  // Flat channel-id bases of the general model's channel families.
  int ReadyBase = -1;
  int FinishedBase = -1;
  int WakeupBase = -1;
  int SleepBase = -1;
  int ExecBase = -1;
  int PreemptBase = -1;
  int SendBase = -1;
  int DeliverBase = -1;

  /// Automaton index of each task (by global task id).
  std::vector<int> TaskAutomaton;
  /// Automaton index of each partition's task scheduler.
  std::vector<int> SchedulerAutomaton;

  /// Store slot of is_failed[0] (the failure flags array).
  int IsFailedSlot = -1;
};

/// Runs Algorithm 1. The configuration is validated first.
Result<BuiltModel> buildModel(const cfg::Config &Config);

} // namespace core
} // namespace swa

#endif // SWA_CORE_INSTANCEBUILDER_H
