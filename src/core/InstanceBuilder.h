//===- core/InstanceBuilder.h - Algorithm 1: config -> NSA ------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algorithm 1 of the paper: for a system configuration, construct the NSA
/// instance — one Task automaton per task, one task-scheduler automaton per
/// partition (matching its scheduling algorithm), one core-scheduler
/// automaton per used core, and one virtual-link automaton per message,
/// wired through the shared variables and channels of the general model.
///
/// The result keeps the channel-table bases and task-to-automaton mapping
/// needed to translate NSA synchronization traces back into system
/// operation traces (EX/PR/FIN events per job, §2.1).
///
//===----------------------------------------------------------------------===//

#ifndef SWA_CORE_INSTANCEBUILDER_H
#define SWA_CORE_INSTANCEBUILDER_H

#include "config/Config.h"
#include "config/Fingerprint.h"
#include "sa/Compile.h"
#include "sa/Network.h"

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace swa {
namespace core {

/// A bound model instance for one configuration.
struct BuiltModel {
  std::unique_ptr<sa::Network> Net;
  cfg::Config Config;

  // Flat channel-id bases of the general model's channel families.
  int ReadyBase = -1;
  int FinishedBase = -1;
  int WakeupBase = -1;
  int SleepBase = -1;
  int ExecBase = -1;
  int PreemptBase = -1;
  int SendBase = -1;
  int DeliverBase = -1;

  /// Automaton index of each task (by global task id).
  std::vector<int> TaskAutomaton;
  /// Automaton index of each partition's task scheduler.
  std::vector<int> SchedulerAutomaton;

  /// Store slot of is_failed[0] (the failure flags array).
  int IsFailedSlot = -1;
};

/// Cache of compiled network bytecode keyed by config *shape*
/// fingerprint. Two configs with equal cfg::fingerprintShape instantiate
/// structurally identical networks whose USL sources differ only in the
/// window tables — which reach the model as per-instance *data*, never
/// as code (see WindowRebinder below) — so their compiled bytecode is
/// byte-for-byte interchangeable. Compilation dominates construction
/// (build ~24 ms + compile ~7 ms vs simulate ~2 ms on the bench
/// workloads), so reusing it across same-shape builds removes the
/// biggest fixed cost of an arena miss. Thread-safe; entries are
/// immutable once inserted (shared_ptr<const>), so concurrent arena
/// leases can hold the same bytecode.
class BytecodeCache {
public:
  std::shared_ptr<const sa::NetworkBytecode>
  lookup(const cfg::Fingerprint &Shape) const {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Map.find(Shape);
    return It == Map.end() ? nullptr : It->second;
  }
  void insert(const cfg::Fingerprint &Shape,
              std::shared_ptr<const sa::NetworkBytecode> BC) {
    std::lock_guard<std::mutex> Lock(Mu);
    Map.emplace(Shape, std::move(BC)); // first insert wins
  }
  size_t size() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Map.size();
  }

private:
  mutable std::mutex Mu;
  std::unordered_map<cfg::Fingerprint,
                     std::shared_ptr<const sa::NetworkBytecode>,
                     cfg::FingerprintHash>
      Map;
};

/// Runs Algorithm 1. The configuration is validated first.
///
/// \p PublishMetrics gates the obs build counters (core.models.built,
/// core.automata.instantiated). Model-arena rebuilds pass false: whether
/// an arena slot exists is a timing fact under parallel workers, and the
/// search's merged metrics must stay worker-count-invariant.
///
/// \p Bytecode (optional) skips USL compilation when it holds this
/// config's shape: on a hit the cached bytecode is injected (with a
/// defensive fallback to compiling if the site walks disagree); on a
/// miss the freshly compiled bytecode is extracted and inserted. The
/// produced model is identical either way — the cache only moves
/// wall-clock, never verdicts, and no obs counters observe it (hit
/// rates are timing facts under parallel workers).
Result<BuiltModel> buildModel(const cfg::Config &Config,
                              bool PublishMetrics = true,
                              BytecodeCache *Bytecode = nullptr);

/// Patch plan for retargeting a built model's CoreScheduler window
/// tables in place. The window positions are the only part of a config
/// that reaches the compiled network as *data* (per-instance const
/// arrays, always indexed through a runtime variable); everything else —
/// task parameters, nw, hyper, the instance layout — is folded into
/// bytecode at build time. Two configs with equal cfg::fingerprintShape
/// therefore differ only in these arrays, and rebinding turns a full
/// Algorithm-1 rebuild into three vector assignments per core.
struct WindowRebinder {
  struct CoreSlots {
    int Core = -1;      ///< Original config core index.
    int StartSlot = -1; ///< ConstArrays slot of w_start.
    int EndSlot = -1;   ///< ConstArrays slot of w_end.
    int PartSlot = -1;  ///< ConstArrays slot of w_part.
    int64_t NumWindows = 0; ///< Folded nw — must match on rebind.
  };
  std::vector<CoreSlots> Cores;
  /// False when the model's CoreScheduler instances do not expose their
  /// array slots (foreign model); rebinding is then unavailable.
  bool Valid = false;
};

/// Builds the patch plan for \p Model from the cs_* automata metadata.
WindowRebinder makeWindowRebinder(const BuiltModel &Model);

/// Retargets \p Model to \p NewConfig by patching the window tables.
/// \p NewConfig must validate and have the same shape
/// (cfg::fingerprintShape) as the model's current config; the per-core
/// window counts and used-core set are re-checked defensively. After a
/// successful rebind the next Simulator::run (which resets first)
/// simulates exactly the model buildModel(NewConfig) would produce.
Error rebindWindows(BuiltModel &Model, const WindowRebinder &RB,
                    const cfg::Config &NewConfig);

} // namespace core
} // namespace swa

#endif // SWA_CORE_INSTANCEBUILDER_H
