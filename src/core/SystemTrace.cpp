//===- core/SystemTrace.cpp - NSA trace -> system trace --------------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "core/SystemTrace.h"

using namespace swa;
using namespace swa::core;

const char *swa::core::sysEventTypeName(SysEventType T) {
  switch (T) {
  case SysEventType::EX:
    return "EX";
  case SysEventType::PR:
    return "PR";
  case SysEventType::FIN:
    return "FIN";
  case SysEventType::READY:
    return "READY";
  }
  return "<bad>";
}

SystemTrace swa::core::mapTrace(const BuiltModel &Model,
                                const nsa::Trace &Events) {
  SystemTrace Out;
  Out.reserve(Events.size());
  int NT = static_cast<int>(Model.TaskAutomaton.size());
  int NP = static_cast<int>(Model.SchedulerAutomaton.size());

  auto InRange = [](int Chan, int Base, int Count) {
    return Base >= 0 && Chan >= Base && Chan < Base + Count;
  };

  for (const nsa::Event &E : Events) {
    if (E.isInternal())
      continue;
    if (InRange(E.Channel, Model.ExecBase, NT)) {
      Out.push_back({SysEventType::EX, E.Channel - Model.ExecBase, E.Time});
      continue;
    }
    if (InRange(E.Channel, Model.PreemptBase, NT)) {
      Out.push_back(
          {SysEventType::PR, E.Channel - Model.PreemptBase, E.Time});
      continue;
    }
    if (InRange(E.Channel, Model.FinishedBase, NP) ||
        InRange(E.Channel, Model.ReadyBase, NP)) {
      // Attributed to the initiating task automaton.
      const sa::Automaton &A =
          *Model.Net->Automata[static_cast<size_t>(E.Initiator.Automaton)];
      int Gid = static_cast<int>(A.metaOr("gid", -1));
      if (Gid < 0)
        continue;
      SysEventType Type = InRange(E.Channel, Model.FinishedBase, NP)
                              ? SysEventType::FIN
                              : SysEventType::READY;
      Out.push_back({Type, Gid, E.Time});
      continue;
    }
  }
  return Out;
}
