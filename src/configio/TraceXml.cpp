//===- configio/TraceXml.cpp - System trace XML exchange --------------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "configio/TraceXml.h"

#include "support/StringUtils.h"
#include "xml/Xml.h"

using namespace swa;
using namespace swa::configio;

std::string swa::configio::writeTraceXml(const std::string &ConfigName,
                                         int64_t Hyperperiod,
                                         const core::SystemTrace &Trace) {
  xml::Node Root;
  Root.Tag = "trace";
  Root.setAttr("configuration", ConfigName);
  Root.setAttr("hyperperiod",
               formatString("%lld", static_cast<long long>(Hyperperiod)));
  for (const core::SysEvent &E : Trace) {
    xml::Node *N = Root.addChild("event");
    N->setAttr("t", formatString("%lld", static_cast<long long>(E.Time)));
    N->setAttr("type", core::sysEventTypeName(E.Type));
    N->setAttr("task", formatString("%d", E.TaskGid));
  }
  return xml::write(Root);
}

Result<TraceDocument>
swa::configio::parseTraceXml(std::string_view Source) {
  Result<xml::NodePtr> Doc = xml::parse(Source);
  if (!Doc.ok())
    return Doc.takeError();
  const xml::Node &Root = **Doc;
  if (Root.Tag != "trace")
    return Error::failure("expected a <trace> root element, found <" +
                          Root.Tag + ">");
  TraceDocument Out;
  Out.ConfigName = Root.attrOr("configuration", "");
  if (!parseInt64(Root.attrOr("hyperperiod", "0"), Out.Hyperperiod))
    return Error::failure("<trace> has a malformed hyperperiod");

  for (const xml::Node *N : Root.children("event")) {
    core::SysEvent E;
    int64_t T, Task;
    const std::string *Type = N->attr("type");
    if (!N->attr("t") || !N->attr("task") || !Type)
      return Error::failure("<event> needs t, type and task attributes");
    if (!parseInt64(*N->attr("t"), T) ||
        !parseInt64(*N->attr("task"), Task))
      return Error::failure("<event> has malformed numeric attributes");
    E.Time = T;
    E.TaskGid = static_cast<int>(Task);
    if (*Type == "EX")
      E.Type = core::SysEventType::EX;
    else if (*Type == "PR")
      E.Type = core::SysEventType::PR;
    else if (*Type == "FIN")
      E.Type = core::SysEventType::FIN;
    else if (*Type == "READY")
      E.Type = core::SysEventType::READY;
    else
      return Error::failure("unknown event type '" + *Type + "'");
    Out.Trace.push_back(E);
  }
  return Out;
}
