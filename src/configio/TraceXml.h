//===- configio/TraceXml.h - System trace XML exchange ----------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// XML serialization of system operation traces — the second half of the
/// Fig. 3 toolchain loop: the model returns the trace to the scheduling
/// tool, which performs its own analysis. Schema:
///
/// \code
/// <trace configuration="demo" hyperperiod="40">
///   <event t="3" type="EX" task="7"/>
///   ...
/// </trace>
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef SWA_CONFIGIO_TRACEXML_H
#define SWA_CONFIGIO_TRACEXML_H

#include "core/SystemTrace.h"

#include <string>
#include <string_view>

namespace swa {
namespace configio {

/// Serializes a system trace.
std::string writeTraceXml(const std::string &ConfigName,
                          int64_t Hyperperiod,
                          const core::SystemTrace &Trace);

/// Parsed trace document.
struct TraceDocument {
  std::string ConfigName;
  int64_t Hyperperiod = 0;
  core::SystemTrace Trace;
};

/// Parses a trace document.
Result<TraceDocument> parseTraceXml(std::string_view Source);

} // namespace configio
} // namespace swa

#endif // SWA_CONFIGIO_TRACEXML_H
