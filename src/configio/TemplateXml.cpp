//===- configio/TemplateXml.cpp - UPPAAL-like template reader ---------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "configio/TemplateXml.h"

#include "support/StringUtils.h"
#include "xml/Xml.h"

using namespace swa;
using namespace swa::configio;

Result<std::unique_ptr<sa::Template>>
swa::configio::parseTemplateXml(std::string_view Source,
                                const usl::Declarations &Globals) {
  Result<xml::NodePtr> Doc = xml::parse(Source);
  if (!Doc.ok())
    return Doc.takeError();
  const xml::Node &Root = **Doc;
  if (Root.Tag != "template")
    return Error::failure("expected a <template> root element, found <" +
                          Root.Tag + ">");
  const std::string *Name = Root.attr("name");
  if (!Name)
    return Error::failure("<template> is missing its name");

  sa::TemplateBuilder TB(*Name, Globals);
  if (const xml::Node *P = Root.child("parameter"))
    TB.params(P->Text);
  for (const xml::Node *D : Root.children("declaration"))
    TB.decls(D->Text);

  bool SawInitial = false;
  for (const xml::Node *L : Root.children("location")) {
    const std::string *Id = L->attr("id");
    if (!Id)
      return Error::failure("template '" + *Name +
                            "': <location> is missing its id");
    bool Committed = L->attrOr("committed", "false") == "true";
    std::string Invariant = L->attrOr("invariant", "");
    // UPPAAL also nests invariants as <label kind="invariant">.
    for (const xml::Node *Lb : L->children("label"))
      if (Lb->attrOr("kind", "") == "invariant")
        Invariant = Lb->Text;
    TB.location(*Id, Invariant, Committed);
    if (L->attrOr("initial", "false") == "true") {
      if (SawInitial)
        return Error::failure("template '" + *Name +
                              "' declares two initial locations");
      SawInitial = true;
      TB.initial(*Id);
    }
  }
  // UPPAAL also marks the initial location with a separate <init> element.
  if (const xml::Node *Init = Root.child("init")) {
    const std::string *Ref = Init->attr("ref");
    if (Ref) {
      if (SawInitial)
        return Error::failure("template '" + *Name +
                              "' declares two initial locations");
      SawInitial = true;
      TB.initial(*Ref);
    }
  }

  for (const xml::Node *T : Root.children("transition")) {
    const std::string *Src = T->attr("source");
    const std::string *Dst = T->attr("target");
    if (!Src || !Dst)
      return Error::failure("template '" + *Name +
                            "': <transition> needs source and target");
    sa::TemplateBuilder::EdgeSpec Spec;
    for (const xml::Node *Lb : T->children("label")) {
      std::string Kind = Lb->attrOr("kind", "");
      if (Kind == "select")
        Spec.Select = Lb->Text;
      else if (Kind == "guard")
        Spec.Guard = Lb->Text;
      else if (Kind == "synchronisation" || Kind == "synchronization" ||
               Kind == "sync")
        Spec.Sync = Lb->Text;
      else if (Kind == "assignment" || Kind == "update")
        Spec.Update = Lb->Text;
      else
        return Error::failure("template '" + *Name +
                              "': unknown label kind '" + Kind + "'");
    }
    TB.edge(*Src, *Dst, std::move(Spec));
  }

  for (const xml::Node *H : Root.children("readhint")) {
    const std::string *Array = H->attr("array");
    if (!Array)
      return Error::failure("template '" + *Name +
                            "': <readhint> is missing its array");
    const std::string *Count = H->attr("count");
    if (!Count)
      return Error::failure("template '" + *Name +
                            "': <readhint> is missing its count");
    if (const std::string *Base = H->attr("base"))
      TB.readRange(*Array, *Base, *Count);
    else if (const std::string *Elems = H->attr("elems"))
      TB.readElems(*Array, *Elems, *Count);
    else
      return Error::failure("template '" + *Name +
                            "': <readhint> needs base= or elems=");
  }

  return TB.build();
}
