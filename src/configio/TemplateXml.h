//===- configio/TemplateXml.h - UPPAAL-like template reader -----*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "translator from UPPAAL to a C++ automata representation" of §4:
/// reads automaton templates from an UPPAAL-flavoured XML format and
/// compiles them (through the USL front-end) into sa::Template objects
/// usable alongside the built-in component library — this is how a user
/// adds, e.g., a custom task-scheduler model. Format:
///
/// \code
/// <template name="RoundRobinScheduler">
///   <parameter>int part, int off, int nt</parameter>
///   <declaration>int cur = -1; ...</declaration>
///   <location id="Asleep" initial="true"/>
///   <location id="Decide" committed="true"/>
///   <location id="Run" invariant="x &lt;= q"/>
///   <transition source="Asleep" target="Decide">
///     <label kind="synchronisation">wakeup[part]?</label>
///     <label kind="guard">...</label>
///     <label kind="select">i : int[0, nt-1]</label>
///     <label kind="assignment">cur = -1</label>
///   </transition>
///   <readhint array="is_ready" base="off" count="nt"/>
/// </template>
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef SWA_CONFIGIO_TEMPLATEXML_H
#define SWA_CONFIGIO_TEMPLATEXML_H

#include "sa/Template.h"

#include <memory>
#include <string_view>

namespace swa {
namespace configio {

/// Parses one <template> document against \p Globals.
Result<std::unique_ptr<sa::Template>>
parseTemplateXml(std::string_view Source, const usl::Declarations &Globals);

} // namespace configio
} // namespace swa

#endif // SWA_CONFIGIO_TEMPLATEXML_H
