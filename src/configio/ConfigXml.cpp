//===- configio/ConfigXml.cpp - Configuration XML I/O -----------------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "configio/ConfigXml.h"

#include "support/StringUtils.h"
#include "xml/Xml.h"

#include <map>

using namespace swa;
using namespace swa::configio;

xml::NodePtr swa::configio::configToXmlNode(const cfg::Config &Config) {
  auto RootPtr = std::make_unique<xml::Node>();
  xml::Node &Root = *RootPtr;
  Root.Tag = "configuration";
  Root.setAttr("name", Config.Name);
  Root.setAttr("coreTypes", formatString("%d", Config.NumCoreTypes));

  for (const cfg::Core &Core : Config.Cores) {
    xml::Node *N = Root.addChild("core");
    N->setAttr("name", Core.Name);
    N->setAttr("module", formatString("%d", Core.Module));
    N->setAttr("type", formatString("%d", Core.CoreType));
  }

  for (const cfg::Partition &Part : Config.Partitions) {
    xml::Node *P = Root.addChild("partition");
    P->setAttr("name", Part.Name);
    P->setAttr("scheduler", cfg::schedulerKindName(Part.Scheduler));
    // An unbound partition (the shape of search-input Base configs) is
    // written as the explicit marker core="unbound" — silently dropping
    // the attribute used to make read(write(C)) fail on the read side.
    if (Part.Core >= 0 &&
        static_cast<size_t>(Part.Core) < Config.Cores.size())
      P->setAttr("core",
                 Config.Cores[static_cast<size_t>(Part.Core)].Name);
    else
      P->setAttr("core", "unbound");
    for (const cfg::Task &T : Part.Tasks) {
      xml::Node *TN = P->addChild("task");
      TN->setAttr("name", T.Name);
      TN->setAttr("priority", formatString("%d", T.Priority));
      TN->setAttr("period",
                  formatString("%lld", static_cast<long long>(T.Period)));
      TN->setAttr("deadline",
                  formatString("%lld",
                               static_cast<long long>(T.Deadline)));
      std::vector<std::string> Wcets;
      for (cfg::TimeValue C : T.Wcet)
        Wcets.push_back(formatString("%lld", static_cast<long long>(C)));
      TN->setAttr("wcet", join(Wcets, " "));
    }
    for (const cfg::Window &W : Part.Windows) {
      xml::Node *WN = P->addChild("window");
      WN->setAttr("start",
                  formatString("%lld", static_cast<long long>(W.Start)));
      WN->setAttr("end",
                  formatString("%lld", static_cast<long long>(W.End)));
    }
  }

  auto TaskPath = [&](const cfg::TaskRef &R) {
    return Config.Partitions[static_cast<size_t>(R.Partition)].Name + "/" +
           Config.taskOf(R).Name;
  };
  for (const cfg::Message &M : Config.Messages) {
    xml::Node *MN = Root.addChild("message");
    MN->setAttr("sender", TaskPath(M.Sender));
    MN->setAttr("receiver", TaskPath(M.Receiver));
    MN->setAttr("memDelay",
                formatString("%lld", static_cast<long long>(M.MemDelay)));
    MN->setAttr("netDelay",
                formatString("%lld", static_cast<long long>(M.NetDelay)));
  }
  return RootPtr;
}

std::string swa::configio::writeConfigXml(const cfg::Config &Config) {
  return xml::write(*configToXmlNode(Config));
}

namespace {

Result<int64_t> intAttr(const xml::Node &N, const char *Name) {
  const std::string *V = N.attr(Name);
  if (!V)
    return Error::failure(formatString("<%s> is missing attribute '%s'",
                                       N.Tag.c_str(), Name));
  int64_t Out;
  if (!parseInt64(*V, Out))
    return Error::failure(formatString(
        "<%s> attribute '%s' is not an integer: '%s'", N.Tag.c_str(), Name,
        V->c_str()));
  return Out;
}

} // namespace

Result<cfg::Config> swa::configio::parseConfigXml(std::string_view Source) {
  Result<xml::NodePtr> Doc = xml::parse(Source);
  if (!Doc.ok())
    return Doc.takeError();
  return configFromXmlNode(**Doc);
}

Result<cfg::Config>
swa::configio::configFromXmlNode(const xml::Node &Root) {
  if (Root.Tag != "configuration")
    return Error::failure("expected a <configuration> root element, found "
                          "<" +
                          Root.Tag + ">");

  cfg::Config C;
  C.Name = Root.attrOr("name", "unnamed");
  Result<int64_t> CoreTypes = intAttr(Root, "coreTypes");
  if (!CoreTypes.ok())
    return CoreTypes.takeError();
  C.NumCoreTypes = static_cast<int>(*CoreTypes);

  std::map<std::string, int> CoreIndex;
  for (const xml::Node *N : Root.children("core")) {
    cfg::Core Core;
    Core.Name = N->attrOr("name",
                          formatString("core%zu", C.Cores.size()));
    Result<int64_t> Module = intAttr(*N, "module");
    Result<int64_t> Type = intAttr(*N, "type");
    if (!Module.ok())
      return Module.takeError();
    if (!Type.ok())
      return Type.takeError();
    Core.Module = static_cast<int>(*Module);
    Core.CoreType = static_cast<int>(*Type);
    if (Core.Name == "unbound")
      return Error::failure(
          "'unbound' is a reserved core name (it marks partitions without "
          "a binding)");
    if (!CoreIndex.emplace(Core.Name, static_cast<int>(C.Cores.size()))
             .second)
      return Error::failure("duplicate core name '" + Core.Name + "'");
    C.Cores.push_back(std::move(Core));
  }

  std::map<std::string, cfg::TaskRef> TaskIndex;
  for (const xml::Node *PN : Root.children("partition")) {
    cfg::Partition Part;
    Part.Name =
        PN->attrOr("name", formatString("p%zu", C.Partitions.size()));
    std::string Sched = PN->attrOr("scheduler", "FPPS");
    if (Sched == "FPPS")
      Part.Scheduler = cfg::SchedulerKind::FPPS;
    else if (Sched == "FPNPS")
      Part.Scheduler = cfg::SchedulerKind::FPNPS;
    else if (Sched == "EDF")
      Part.Scheduler = cfg::SchedulerKind::EDF;
    else
      return Error::failure("unknown scheduler '" + Sched +
                            "' in partition '" + Part.Name + "'");
    const std::string *CoreName = PN->attr("core");
    if (!CoreName)
      return Error::failure("partition '" + Part.Name +
                            "' is missing its core binding (use "
                            "core=\"unbound\" for deliberately unbound "
                            "partitions)");
    if (*CoreName == "unbound") {
      Part.Core = -1; // Explicitly unbound: the search chooses later.
    } else {
      auto It = CoreIndex.find(*CoreName);
      if (It == CoreIndex.end())
        return Error::failure("partition '" + Part.Name +
                              "' references unknown core '" + *CoreName +
                              "'");
      Part.Core = It->second;
    }

    for (const xml::Node *TN : PN->children("task")) {
      cfg::Task T;
      T.Name = TN->attrOr("name", formatString("t%zu", Part.Tasks.size()));
      Result<int64_t> Prio = intAttr(*TN, "priority");
      Result<int64_t> Period = intAttr(*TN, "period");
      Result<int64_t> Deadline = intAttr(*TN, "deadline");
      if (!Prio.ok())
        return Prio.takeError();
      if (!Period.ok())
        return Period.takeError();
      if (!Deadline.ok())
        return Deadline.takeError();
      T.Priority = static_cast<int>(*Prio);
      T.Period = *Period;
      T.Deadline = *Deadline;
      const std::string *Wcet = TN->attr("wcet");
      if (!Wcet)
        return Error::failure("task '" + T.Name + "' is missing wcet");
      for (const std::string &Piece : split(*Wcet, ' ')) {
        if (trim(Piece).empty())
          continue;
        int64_t V;
        if (!parseInt64(Piece, V))
          return Error::failure("task '" + T.Name +
                                "' has a malformed wcet list");
        T.Wcet.push_back(V);
      }
      std::string Path = Part.Name + "/" + T.Name;
      if (!TaskIndex
               .emplace(Path,
                        cfg::TaskRef{static_cast<int>(C.Partitions.size()),
                                     static_cast<int>(Part.Tasks.size())})
               .second)
        return Error::failure("duplicate task path '" + Path + "'");
      Part.Tasks.push_back(std::move(T));
    }
    for (const xml::Node *WN : PN->children("window")) {
      Result<int64_t> Start = intAttr(*WN, "start");
      Result<int64_t> End = intAttr(*WN, "end");
      if (!Start.ok())
        return Start.takeError();
      if (!End.ok())
        return End.takeError();
      Part.Windows.push_back({*Start, *End});
    }
    C.Partitions.push_back(std::move(Part));
  }

  for (const xml::Node *MN : Root.children("message")) {
    cfg::Message M;
    auto Resolve = [&](const char *Attr) -> Result<cfg::TaskRef> {
      const std::string *Path = MN->attr(Attr);
      if (!Path)
        return Error::failure(formatString(
            "<message> is missing attribute '%s'", Attr));
      auto It = TaskIndex.find(*Path);
      if (It == TaskIndex.end())
        return Error::failure("message references unknown task '" + *Path +
                              "'");
      return It->second;
    };
    Result<cfg::TaskRef> Sender = Resolve("sender");
    Result<cfg::TaskRef> Receiver = Resolve("receiver");
    if (!Sender.ok())
      return Sender.takeError();
    if (!Receiver.ok())
      return Receiver.takeError();
    Result<int64_t> Mem = intAttr(*MN, "memDelay");
    Result<int64_t> Net = intAttr(*MN, "netDelay");
    if (!Mem.ok())
      return Mem.takeError();
    if (!Net.ok())
      return Net.takeError();
    M.Sender = *Sender;
    M.Receiver = *Receiver;
    M.MemDelay = *Mem;
    M.NetDelay = *Net;
    C.Messages.push_back(M);
  }

  // Explicitly unbound partitions are legal input (search Base configs),
  // so validation allows them; a partition can only be unbound here via
  // the deliberate core="unbound" marker — a *missing* binding is still a
  // parse error above. Strict validation happens where it matters, at
  // model construction (core::buildModel).
  if (Error E = C.validate(cfg::ValidationPolicy::AllowUnbound))
    return E.withContext("configuration '" + C.Name + "'");
  return C;
}
