//===- configio/ConfigXml.h - Configuration XML I/O -------------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// XML serialization of system configurations — the exchange format
/// between the scheduling tool and the parametric model in the paper's
/// toolchain (§4, Fig. 3). Schema:
///
/// \code
/// <configuration name="demo" coreTypes="2">
///   <core name="m0c0" module="0" type="0"/>
///   <partition name="p0" scheduler="FPPS" core="m0c0">
///     <task name="t1" priority="2" period="10" deadline="10"
///           wcet="3 4"/>
///     <window start="0" end="20"/>
///   </partition>
///   <message sender="p0/t1" receiver="p1/t2" memDelay="1" netDelay="5"/>
/// </configuration>
/// \endcode
///
/// Cores are referenced by name, tasks as "partition/task". Names must be
/// unique within their scope. A partition without a binding (a search
/// input whose cores/windows the scheduling tool will choose) is written
/// and read as the explicit marker `core="unbound"`; "unbound" is
/// therefore a reserved core name. This keeps read(write(C)) == C for
/// unbound Base configurations.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_CONFIGIO_CONFIGXML_H
#define SWA_CONFIGIO_CONFIGXML_H

#include "config/Config.h"
#include "xml/Xml.h"

#include <string>
#include <string_view>

namespace swa {
namespace configio {

/// Serializes \p Config to an XML document string.
std::string writeConfigXml(const cfg::Config &Config);

/// Parses a configuration document. The result is validated.
Result<cfg::Config> parseConfigXml(std::string_view Source);

/// Builds the <configuration> element for \p Config (no XML declaration).
/// The node-level half of writeConfigXml, exposed so other documents —
/// e.g. the differential harness's reproducer bundles — can embed a
/// configuration as a child element.
xml::NodePtr configToXmlNode(const cfg::Config &Config);

/// Parses a <configuration> element (the node-level half of
/// parseConfigXml). The result is validated with AllowUnbound policy.
Result<cfg::Config> configFromXmlNode(const xml::Node &Root);

} // namespace configio
} // namespace swa

#endif // SWA_CONFIGIO_CONFIGXML_H
