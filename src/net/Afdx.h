//===- net/Afdx.h - Switched-network worst-case delay bounds ----*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An AFDX-style switched network substrate. The paper assumes message
/// transfer delays equal to safe upper bounds and notes that "typical
/// avionics networks (e.g. AFDX) allow to obtain safe estimations for
/// these delays"; extending the library with switched-network component
/// models is listed as future work. This module provides that estimation:
///
///  * a topology of end systems (module network interfaces) and switches
///    connected by full-duplex links with bandwidth and technological
///    latency;
///  * virtual links (VLs): unicast/multicast routes with a BAG (bandwidth
///    allocation gap) and a maximum frame size;
///  * a classic per-hop interference bound: on every output port a frame
///    waits for at most one maximum-size frame of each other VL routed
///    through that port (BAG regulation guarantees at most one pending
///    frame per VL), plus its own serialization time and the link's
///    technological latency.
///
/// The bound is deliberately the simple textbook one (not full network
/// calculus with burst accumulation) — it is safe for BAG-regulated
/// traffic with FIFO ports and suffices to parameterize the virtual-link
/// automata of the model: computeMessageDelays() writes the per-message
/// worst-case network delays into a configuration.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_NET_AFDX_H
#define SWA_NET_AFDX_H

#include "config/Config.h"
#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace swa {
namespace net {

enum class NodeKind { EndSystem, Switch };

/// A switched network with virtual-link routes.
class Topology {
public:
  /// Adds a node; returns its id.
  int addNode(std::string Name, NodeKind Kind);

  /// Adds a full-duplex link between two nodes.
  ///
  /// \p BytesPerTick is the bandwidth, \p TechLatency the per-traversal
  /// technological latency in ticks. Returns the link id.
  Result<int> addLink(int NodeA, int NodeB, int64_t BytesPerTick,
                      int64_t TechLatency);

  /// Declares a virtual link with the given route (node ids, first is the
  /// source end system). \p MaxFrameBytes bounds every frame; \p Bag is
  /// the bandwidth allocation gap (minimum spacing between frames of this
  /// VL, ticks). Returns the VL id.
  Result<int> addVirtualLink(std::vector<int> Path, int64_t MaxFrameBytes,
                             int64_t Bag);

  /// Finds a route from \p From to \p To (fewest hops) and registers it as
  /// a virtual link. Convenience for tests/examples.
  Result<int> routeVirtualLink(int From, int To, int64_t MaxFrameBytes,
                               int64_t Bag);

  int numNodes() const { return static_cast<int>(Nodes.size()); }
  int numVirtualLinks() const { return static_cast<int>(Vls.size()); }

  /// Worst-case end-to-end delay bound of a VL (ticks): per hop, the
  /// serialization of one maximum frame of every other VL sharing the
  /// output port, plus this VL's own serialization and the link latency.
  Result<int64_t> worstCaseDelay(int VlId) const;

  /// Name of a node (for reports).
  const std::string &nodeName(int Node) const {
    return Nodes[static_cast<size_t>(Node)].Name;
  }

private:
  struct Node {
    std::string Name;
    NodeKind Kind;
  };
  struct Link {
    int A, B;
    int64_t BytesPerTick;
    int64_t TechLatency;
  };
  struct Vl {
    std::vector<int> Path;
    std::vector<int> Links; ///< Directed hop i uses Links[i].
    int64_t MaxFrameBytes;
    int64_t Bag;
  };

  /// Link id connecting two adjacent nodes, or -1.
  int linkBetween(int A, int B) const;

  std::vector<Node> Nodes;
  std::vector<Link> Links;
  std::vector<Vl> Vls;
};

/// Maps every message of \p Config onto the network: the message's
/// NetDelay becomes the worst-case bound of \p VlOfMessage[msg index].
/// Sizes must match.
Error computeMessageDelays(cfg::Config &Config, const Topology &Net,
                           const std::vector<int> &VlOfMessage);

} // namespace net
} // namespace swa

#endif // SWA_NET_AFDX_H
