//===- net/Afdx.cpp - Switched-network worst-case delay bounds --------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "net/Afdx.h"

#include "support/MathExtras.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <deque>

using namespace swa;
using namespace swa::net;

int Topology::addNode(std::string Name, NodeKind Kind) {
  Nodes.push_back({std::move(Name), Kind});
  return static_cast<int>(Nodes.size() - 1);
}

Result<int> Topology::addLink(int NodeA, int NodeB, int64_t BytesPerTick,
                              int64_t TechLatency) {
  if (NodeA < 0 || NodeA >= numNodes() || NodeB < 0 ||
      NodeB >= numNodes() || NodeA == NodeB)
    return Error::failure("link endpoints must be distinct existing nodes");
  if (BytesPerTick <= 0)
    return Error::failure("link bandwidth must be positive");
  if (TechLatency < 0)
    return Error::failure("link latency must be non-negative");
  Links.push_back({NodeA, NodeB, BytesPerTick, TechLatency});
  return static_cast<int>(Links.size() - 1);
}

int Topology::linkBetween(int A, int B) const {
  for (size_t L = 0; L < Links.size(); ++L)
    if ((Links[L].A == A && Links[L].B == B) ||
        (Links[L].A == B && Links[L].B == A))
      return static_cast<int>(L);
  return -1;
}

Result<int> Topology::addVirtualLink(std::vector<int> Path,
                                     int64_t MaxFrameBytes, int64_t Bag) {
  if (Path.size() < 2)
    return Error::failure("a virtual link needs at least two nodes");
  if (MaxFrameBytes <= 0 || Bag <= 0)
    return Error::failure("frame size and BAG must be positive");
  if (Nodes[static_cast<size_t>(Path.front())].Kind != NodeKind::EndSystem)
    return Error::failure("a virtual link must start at an end system");
  if (Nodes[static_cast<size_t>(Path.back())].Kind != NodeKind::EndSystem)
    return Error::failure("a virtual link must end at an end system");
  Vl V;
  V.Path = std::move(Path);
  V.MaxFrameBytes = MaxFrameBytes;
  V.Bag = Bag;
  for (size_t I = 0; I + 1 < V.Path.size(); ++I) {
    int Node = V.Path[I];
    int Next = V.Path[I + 1];
    if (Node < 0 || Node >= numNodes() || Next < 0 || Next >= numNodes())
      return Error::failure("virtual link path references unknown nodes");
    if (I > 0 &&
        Nodes[static_cast<size_t>(Node)].Kind != NodeKind::Switch)
      return Error::failure(
          "intermediate hops of a virtual link must be switches");
    int L = linkBetween(Node, Next);
    if (L < 0)
      return Error::failure(formatString(
          "no link between '%s' and '%s'",
          Nodes[static_cast<size_t>(Node)].Name.c_str(),
          Nodes[static_cast<size_t>(Next)].Name.c_str()));
    V.Links.push_back(L);
  }
  Vls.push_back(std::move(V));
  return static_cast<int>(Vls.size() - 1);
}

Result<int> Topology::routeVirtualLink(int From, int To,
                                       int64_t MaxFrameBytes, int64_t Bag) {
  if (From < 0 || From >= numNodes() || To < 0 || To >= numNodes())
    return Error::failure("route endpoints must be existing nodes");
  // BFS over the undirected link graph.
  std::vector<int> Prev(Nodes.size(), -2);
  std::deque<int> Queue;
  Queue.push_back(From);
  Prev[static_cast<size_t>(From)] = -1;
  while (!Queue.empty()) {
    int N = Queue.front();
    Queue.pop_front();
    if (N == To)
      break;
    for (const Link &L : Links) {
      int Other = L.A == N ? L.B : (L.B == N ? L.A : -1);
      if (Other < 0 || Prev[static_cast<size_t>(Other)] != -2)
        continue;
      Prev[static_cast<size_t>(Other)] = N;
      Queue.push_back(Other);
    }
  }
  if (Prev[static_cast<size_t>(To)] == -2)
    return Error::failure(
        formatString("no route from '%s' to '%s'",
                     Nodes[static_cast<size_t>(From)].Name.c_str(),
                     Nodes[static_cast<size_t>(To)].Name.c_str()));
  std::vector<int> Path;
  for (int N = To; N != -1; N = Prev[static_cast<size_t>(N)])
    Path.push_back(N);
  std::reverse(Path.begin(), Path.end());
  return addVirtualLink(std::move(Path), MaxFrameBytes, Bag);
}

Result<int64_t> Topology::worstCaseDelay(int VlId) const {
  if (VlId < 0 || static_cast<size_t>(VlId) >= Vls.size())
    return Error::failure("unknown virtual link");
  const Vl &V = Vls[static_cast<size_t>(VlId)];

  int64_t Total = 0;
  for (size_t Hop = 0; Hop < V.Links.size(); ++Hop) {
    const Link &L = Links[static_cast<size_t>(V.Links[Hop])];
    // The directed output port is (path node -> next node) of this hop.
    int PortFrom = V.Path[Hop];
    int PortTo = V.Path[Hop + 1];

    // Own serialization plus technological latency.
    int64_t Serialize = ceilDiv64(V.MaxFrameBytes, L.BytesPerTick);
    int64_t HopDelay = Serialize + L.TechLatency;

    // FIFO interference: one maximum frame of every other VL using the
    // same directed port.
    for (size_t Other = 0; Other < Vls.size(); ++Other) {
      if (static_cast<int>(Other) == VlId)
        continue;
      const Vl &O = Vls[Other];
      for (size_t OH = 0; OH < O.Links.size(); ++OH) {
        if (O.Path[OH] == PortFrom && O.Path[OH + 1] == PortTo) {
          HopDelay += ceilDiv64(O.MaxFrameBytes, L.BytesPerTick);
          break;
        }
      }
    }
    Total += HopDelay;
  }
  return Total;
}

Error swa::net::computeMessageDelays(cfg::Config &Config,
                                     const Topology &Net,
                                     const std::vector<int> &VlOfMessage) {
  if (VlOfMessage.size() != Config.Messages.size())
    return Error::failure(
        formatString("expected one virtual link per message (%zu messages, "
                     "%zu mappings)",
                     Config.Messages.size(), VlOfMessage.size()));
  for (size_t M = 0; M < Config.Messages.size(); ++M) {
    Result<int64_t> D = Net.worstCaseDelay(VlOfMessage[M]);
    if (!D.ok())
      return D.takeError().withContext(
          formatString("message %zu", M));
    Config.Messages[M].NetDelay = *D;
  }
  return Error::success();
}
