//===- analysis/Schedulability.h - Criterion and job statistics -*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks the schedulability criterion of §2.1 on a system trace: for
/// every job w_ijk of every task, the sum of its execution intervals must
/// equal the task's WCET (on the bound core's type) and its finish must
/// fall within the deadline. Also derives per-job statistics (response
/// times, ready latency, preemption counts) used by reports and tests.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_ANALYSIS_SCHEDULABILITY_H
#define SWA_ANALYSIS_SCHEDULABILITY_H

#include "config/Config.h"
#include "core/SystemTrace.h"

#include <string>
#include <vector>

namespace swa {
namespace analysis {

struct ExecInterval {
  int64_t Start = 0;
  int64_t End = 0;

  int64_t length() const { return End - Start; }
  bool operator==(const ExecInterval &O) const {
    return Start == O.Start && End == O.End;
  }
};

struct JobStats {
  int TaskGid = -1;
  int JobIndex = -1;
  int64_t ReleaseTime = 0;
  /// Time the job became ready (-1: it never did, e.g. missing input data).
  int64_t ReadyTime = -1;
  /// FIN time (-1: no FIN observed).
  int64_t FinishTime = -1;
  /// Execution intervals (zero-length ones dropped), in time order.
  std::vector<ExecInterval> Intervals;
  int64_t ExecTotal = 0;
  int Preemptions = 0;
  /// True when the job completed its WCET within its deadline.
  bool Completed = false;

  /// FinishTime - ReleaseTime for completed jobs, -1 otherwise.
  int64_t responseTime() const {
    return Completed ? FinishTime - ReleaseTime : -1;
  }
};

struct AnalysisResult {
  bool Schedulable = false;
  int64_t TotalJobs = 0;
  int64_t MissedJobs = 0;
  std::vector<JobStats> Jobs;
  /// Worst response time per task gid (-1 when some job missed).
  std::vector<int64_t> WorstResponse;
  /// Human-readable description of the first criterion violation.
  std::string FirstViolation;
};

/// Evaluates the criterion over the jobs of one hyperperiod.
AnalysisResult analyzeTrace(const cfg::Config &Config,
                            const core::SystemTrace &Trace);

/// True when two traces are equivalent for schedulability purposes: the
/// same per-job execution-interval sets, ready times and finish times
/// (the paper's trace-equivalence, §3).
bool jobTracesEquivalent(const AnalysisResult &A, const AnalysisResult &B);

} // namespace analysis
} // namespace swa

#endif // SWA_ANALYSIS_SCHEDULABILITY_H
