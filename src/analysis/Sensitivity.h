//===- analysis/Sensitivity.h - Parametric sensitivity analysis -*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parametric schedulability queries on top of the verdict oracle: instead
/// of one binary schedulable/unschedulable answer, compute how far a
/// configuration is from the edge. Reproduces numerically what parametric
/// timed-automata tools (IMITATOR) compute symbolically, with the
/// early-exit simulator as the oracle — thousands of exact verdicts per
/// query, which is exactly the regime the fast engine was built for.
///
/// Queries (all driven by monotone binary search over analyzeVerdictOnly):
///
///  * per-task WCET slack — the largest integer inflation (in ticks,
///    applied to every per-core-type WCET entry of the task) that stays
///    schedulable, with a *certificate pair*: the largest passing and the
///    smallest failing perturbed configuration actually probed. With the
///    default tolerance of one tick the two certificates are adjacent, so
///    both endpoints are verified by construction — no monotonicity
///    assumption is needed for the certificates themselves (see DESIGN.md,
///    "Parametric sensitivity").
///
///  * per-task period feasibility — the smallest period the task can run
///    at, probed over the divisors of its base period (divisor shrinkages
///    keep every period dividing the base hyperperiod, so the window
///    tables stay valid); the probe clamps the deadline to the new period.
///
///  * per-task window-offset feasibility — the interval of whole-partition
///    window shifts (in ticks, negative = earlier) that stay valid and
///    schedulable. Shifts never wrap: the domain is bounded by the first /
///    last window against [0, L), so the window count — and therefore
///    cfg::fingerprintShape — is invariant and probes rebind arena
///    instances instead of rebuilding models.
///
///  * breakdown frontier — the largest *uniform* WCET inflation factor
///    (fixed-point per-mille, 1000 = 1.0; entries scale by
///    ceil(c * F / 1000)) every task can absorb simultaneously.
///
/// A probe that perturbs the config out of validity counts as failing:
/// "not schedulable as specified" covers "not a well-formed configuration
/// at this parameter value".
///
/// Execution: queries fan out over support::ThreadPool, one work item per
/// (task, parameter) query, results written by index and merged in task
/// order — the result is byte-identical for every worker count. Probes
/// consult a schedtool::VerdictCache keyed by the perturbed config's
/// canonical fingerprint (offset probes of co-partitioned tasks and
/// repeated queries against a caller-shared cache replay for free); only
/// decided verdicts are cached, so early-exit verdicts — which are exact —
/// are the only thing a probe can replay. Cache hit/miss *counts* are
/// timing facts under parallel queries and are deliberately absent from
/// SensitivityResult (they live in the obs counters); every field of the
/// result is deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_ANALYSIS_SENSITIVITY_H
#define SWA_ANALYSIS_SENSITIVITY_H

#include "config/Config.h"
#include "support/CancelToken.h"
#include "support/Error.h"

#include <string>
#include <vector>

namespace swa {
namespace obs {
class RunReport;
} // namespace obs

namespace schedtool {
class VerdictCache;
} // namespace schedtool

namespace analysis {

struct SensitivityOptions {
  /// Convergence granularity of the tick-valued searches (WCET slack,
  /// window offsets): the search stops when the passing and failing
  /// brackets are within this many ticks. 1 (the default) makes the
  /// certificate pair adjacent.
  cfg::TimeValue ToleranceTicks = 1;
  /// Convergence granularity of the breakdown-frontier factor search, in
  /// per-mille of the inflation factor.
  int FrontierTolerancePermille = 10;
  /// Threads for the query fan-out (1 = serial). Results are
  /// byte-identical for every value.
  int Workers = 1;
  /// Safety valve per query; every search here converges in well under 64
  /// probes, so hitting the cap marks the query undecided.
  int MaxProbesPerQuery = 64;
  /// Which parameter families to query.
  bool QueryWcet = true;
  bool QueryPeriod = true;
  bool QueryOffset = true;
  bool QueryFrontier = true;
  /// Per-probe simulation wall-clock budget (ms); negative = none. A probe
  /// the guard rails end marks its query undecided — never a wrong number.
  int64_t ProbeBudgetMs = -1;
  /// Cooperative cancellation, polled before every probe.
  const CancelToken *Cancel = nullptr;
  /// Stop probe simulations at the first deadline miss. First-miss
  /// verdicts are exact (the EarlyExitVsFull oracle contract), so this is
  /// pure speed.
  bool UseEarlyExit = true;
  /// Reuse NSA instances across same-shape probes (offset probes) via a
  /// per-query analysis::ModelArena.
  bool UseInstanceReuse = true;
  /// Optional caller-shared verdict cache (e.g. across repeated queries or
  /// with a surrounding search). Null uses a private per-call cache.
  schedtool::VerdictCache *Cache = nullptr;
};

/// Per-task WCET slack with its certificate pair.
struct WcetSlackResult {
  int TaskGid = -1;
  /// Largest probe-able inflation: Deadline - max per-core-type WCET
  /// (beyond it the config is invalid by WCET <= Deadline).
  cfg::TimeValue DomainMax = 0;
  /// Largest inflation (ticks) observed schedulable; -1 when the base
  /// config itself is unschedulable or the query was aborted.
  cfg::TimeValue SlackTicks = -1;
  /// (max WCET + slack) / max WCET — the inflation factor form.
  double SlackFactor = 1.0;
  /// The whole domain passes: slack == DomainMax and no failing
  /// certificate exists (inflating further is invalid, not unschedulable).
  bool UnboundedInDomain = false;
  /// False when cancellation / probe budget / the probe cap ended the
  /// query before convergence; the numeric fields are then meaningless.
  bool Decided = false;
  int Probes = 0;
  bool HasPassing = false;
  bool HasFailing = false;
  /// Certificate pair: actually-probed configs at the bracket endpoints.
  cfg::Config LargestPassing;
  cfg::Config SmallestFailing;
};

/// Per-task minimum feasible period over divisor shrinkages.
struct PeriodIntervalResult {
  int TaskGid = -1;
  cfg::TimeValue BasePeriod = 0;
  /// Smallest divisor of BasePeriod (>= the task's largest WCET) that
  /// stays schedulable; BasePeriod itself when no shrinkage fits, -1 when
  /// the query was aborted or the task exchanges messages (whose validity
  /// ties periods together — the domain is empty).
  cfg::TimeValue MinFeasiblePeriod = -1;
  /// Number of candidate periods in the probe domain.
  int DomainSize = 0;
  bool Decided = false;
  int Probes = 0;
};

/// Per-task window-offset feasibility interval (shifts of the owning
/// partition's whole window set).
struct OffsetIntervalResult {
  int TaskGid = -1;
  /// Shift domain keeping every window inside [0, L): [DomainLo, DomainHi]
  /// with DomainLo <= 0 <= DomainHi.
  cfg::TimeValue DomainLo = 0;
  cfg::TimeValue DomainHi = 0;
  /// Feasible interval endpoints found by the two endpoint searches.
  cfg::TimeValue MinShift = 0;
  cfg::TimeValue MaxShift = 0;
  /// The search reached the domain edge without finding a failure.
  bool LoUnbounded = false;
  bool HiUnbounded = false;
  bool Decided = false;
  int Probes = 0;
};

/// System-wide uniform-inflation breakdown frontier.
struct BreakdownFrontierResult {
  /// Largest factor probed (per-mille); at this factor some WCET exceeds
  /// its deadline, so the config is invalid — failing by convention.
  int DomainMaxPermille = 1000;
  /// Largest per-mille factor observed schedulable; -1 when the base is
  /// unschedulable or the query was aborted.
  int FrontierPermille = -1;
  bool UnboundedInDomain = false;
  bool Decided = false;
  int Probes = 0;
};

struct SensitivityResult {
  /// Verdict of the unperturbed configuration. When it is unschedulable
  /// (or undecided), no per-parameter query runs: every slack is -1 by
  /// definition and the result carries only the base verdict.
  bool BaseSchedulable = false;
  bool BaseDecided = false;
  /// SensitivityOptions::Cancel fired somewhere along the way.
  bool Cancelled = false;
  /// Oracle consultations across all queries (cache hits included —
  /// deterministic, unlike the hit/miss split).
  int TotalProbes = 0;
  std::vector<WcetSlackResult> Wcet;
  std::vector<PeriodIntervalResult> Periods;
  std::vector<OffsetIntervalResult> Offsets;
  BreakdownFrontierResult Frontier;

  /// Deterministic multi-line rendering of every numeric field (configs
  /// elided) — the workers-invariance contract compares these strings.
  std::string summary() const;
};

/// Runs the enabled queries against \p Config. The config must validate
/// under ValidationPolicy::Strict; the error is forwarded otherwise. A
/// probe-level model error aborts with that error; guard-rail stops and
/// cancellation instead mark the affected queries undecided.
Result<SensitivityResult>
analyzeSensitivity(const cfg::Config &Config,
                   const SensitivityOptions &Options = {});

/// Perturbation builders used by the probes — exported so the
/// differential oracle and the tests perturb configs *identically* to the
/// search that reported the numbers.
///
/// Adds \p Delta to every per-core-type WCET entry of the task.
cfg::Config withWcetDelta(const cfg::Config &Base, int TaskGid,
                          cfg::TimeValue Delta);
/// Sets the task's period to \p Period and clamps its deadline to it.
cfg::Config withPeriod(const cfg::Config &Base, int TaskGid,
                       cfg::TimeValue Period);
/// Shifts every window of partition \p Partition by \p Shift ticks.
cfg::Config withWindowShift(const cfg::Config &Base, int Partition,
                            cfg::TimeValue Shift);
/// Scales every WCET entry of every task by \p Permille / 1000, rounding
/// up (1000 = identity).
cfg::Config withUniformInflation(const cfg::Config &Base, int Permille);

/// Populates \p Report with the query outcome: probe totals, per-family
/// query counts, slack extremes, the frontier, and probes/s when
/// \p ElapsedSec is positive.
void fillSensitivityReport(obs::RunReport &Report,
                           const SensitivityResult &Res, double ElapsedSec);

} // namespace analysis
} // namespace swa

#endif // SWA_ANALYSIS_SENSITIVITY_H
