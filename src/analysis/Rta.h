//===- analysis/Rta.h - Analytic response-time analysis ---------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic fixed-point response-time analysis (Joseph & Pandya) for the
/// restricted case the theory covers: one FPPS partition with a
/// full-hyperperiod window, independent tasks, and deadline <= period:
///
///   R_i = C_i + sum_{j in hp(i)} ceil(R_i / T_j) * C_j
///
/// hp(i) includes *equal*-priority tasks: with FIFO tie-breaking a
/// same-priority job admitted first delays task i exactly like a
/// higher-priority one, so counting ties keeps the bound safe. The
/// iteration is fully guarded: an un-converged fixpoint (iteration cap)
/// or an int64 overflow of the interference sum reports the task
/// unschedulable (Response = -1) instead of returning an under-estimate
/// or invoking undefined behaviour.
///
/// The simulation engine is the system under test here, not this formula:
/// property tests cross-validate that the model's worst observed response
/// times never exceed the analytic bound, and that verdicts agree on
/// synchronous-release task sets (where the critical instant occurs and
/// the bound is tight at the first job).
///
//===----------------------------------------------------------------------===//

#ifndef SWA_ANALYSIS_RTA_H
#define SWA_ANALYSIS_RTA_H

#include "config/Config.h"

#include <vector>

namespace swa {
namespace analysis {

struct RtaResult {
  bool Schedulable = false;
  /// Response-time bound per task of the partition (-1: diverged past the
  /// deadline, failed to converge within the iteration cap, or overflowed
  /// int64 — all reported unschedulable).
  std::vector<int64_t> Response;
};

/// Runs RTA on partition \p Partition of \p Config. Preconditions (FPPS,
/// full window) are asserted.
RtaResult responseTimeAnalysis(const cfg::Config &Config, int Partition);

} // namespace analysis
} // namespace swa

#endif // SWA_ANALYSIS_RTA_H
