//===- analysis/Sensitivity.cpp - Parametric sensitivity analysis ---------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Sensitivity.h"

#include "analysis/Analyzer.h"
#include "analysis/ModelArena.h"
#include "config/Fingerprint.h"
#include "obs/Metrics.h"
#include "obs/RunReport.h"
#include "obs/Span.h"
#include "obs/Timer.h"
#include "schedtool/VerdictCache.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <limits>

using namespace swa;
using namespace swa::analysis;

//===----------------------------------------------------------------------===//
// Perturbation builders
//===----------------------------------------------------------------------===//

cfg::Config swa::analysis::withWcetDelta(const cfg::Config &Base, int TaskGid,
                                         cfg::TimeValue Delta) {
  cfg::Config C = Base;
  cfg::TaskRef Ref = C.taskRefOf(TaskGid);
  cfg::Task &T = C.Partitions[static_cast<size_t>(Ref.Partition)]
                     .Tasks[static_cast<size_t>(Ref.Task)];
  for (cfg::TimeValue &W : T.Wcet)
    W += Delta;
  return C;
}

cfg::Config swa::analysis::withPeriod(const cfg::Config &Base, int TaskGid,
                                      cfg::TimeValue Period) {
  cfg::Config C = Base;
  cfg::TaskRef Ref = C.taskRefOf(TaskGid);
  cfg::Task &T = C.Partitions[static_cast<size_t>(Ref.Partition)]
                     .Tasks[static_cast<size_t>(Ref.Task)];
  T.Period = Period;
  T.Deadline = std::min(T.Deadline, Period);
  return C;
}

cfg::Config swa::analysis::withWindowShift(const cfg::Config &Base,
                                           int Partition,
                                           cfg::TimeValue Shift) {
  cfg::Config C = Base;
  for (cfg::Window &W : C.Partitions[static_cast<size_t>(Partition)].Windows) {
    W.Start += Shift;
    W.End += Shift;
  }
  return C;
}

cfg::Config swa::analysis::withUniformInflation(const cfg::Config &Base,
                                                int Permille) {
  cfg::Config C = Base;
  for (cfg::Partition &P : C.Partitions)
    for (cfg::Task &T : P.Tasks)
      for (cfg::TimeValue &W : T.Wcet) {
        if (W > (std::numeric_limits<cfg::TimeValue>::max() - 999) /
                    std::max(Permille, 1)) {
          // Saturate past the deadline: the probe then fails validation,
          // which is the "failing by convention" verdict the search wants.
          W = T.Deadline + 1;
          continue;
        }
        W = (W * Permille + 999) / 1000;
      }
  return C;
}

//===----------------------------------------------------------------------===//
// The probe engine
//===----------------------------------------------------------------------===//

namespace {

enum class Probe { Pass, Fail, Undecided };

/// One query's oracle frontend: validates, consults the shared verdict
/// cache, and simulates on a miss (optionally through a per-query model
/// arena, so same-shape probes — offset shifts — rebind instead of
/// rebuilding). Guard-rail stops, cancellation and the probe cap latch
/// Aborted; a model error latches Error. Both make every later probe
/// Undecided, so a query winds down instead of looping.
struct ProbeEngine {
  const SensitivityOptions &Opts;
  schedtool::VerdictCache &Cache;
  obs::Counter *ProbesC = nullptr;
  obs::Counter *HitC = nullptr;
  obs::Counter *MissC = nullptr;
  obs::Counter *InvalidC = nullptr;

  ModelArena Arena{8};
  int Probes = 0;
  bool Aborted = false;
  std::string ErrMsg;

  ProbeEngine(const SensitivityOptions &Opts, schedtool::VerdictCache &Cache)
      : Opts(Opts), Cache(Cache) {
    if (obs::enabled()) {
      obs::Registry &Reg = obs::Registry::global();
      ProbesC = &Reg.counter("sensitivity.probes");
      HitC = &Reg.counter("sensitivity.cache.hits");
      MissC = &Reg.counter("sensitivity.cache.misses");
      InvalidC = &Reg.counter("sensitivity.invalid_probes");
    }
  }

  Probe probe(const cfg::Config &C) {
    if (Aborted || !ErrMsg.empty())
      return Probe::Undecided;
    if (Opts.Cancel && Opts.Cancel->isCancelled()) {
      Aborted = true;
      return Probe::Undecided;
    }
    if (Probes >= Opts.MaxProbesPerQuery) {
      Aborted = true;
      return Probe::Undecided;
    }
    ++Probes;
    if (ProbesC)
      ProbesC->add(1);
    // An invalid perturbation is "not schedulable as specified" — failing
    // by convention, and never cached (its fingerprint would not be a
    // congruence for anything).
    if (Error E = C.validate()) {
      if (InvalidC)
        InvalidC->add(1);
      return Probe::Fail;
    }
    cfg::Fingerprint Canon = cfg::fingerprintConfig(C);
    if (const schedtool::VerdictCache::Entry *E = Cache.lookup(Canon)) {
      if (HitC)
        HitC->add(1);
      return E->Verdict.Schedulable ? Probe::Pass : Probe::Fail;
    }
    if (MissC)
      MissC->add(1);
    nsa::SimOptions SO;
    SO.StopOnFirstMiss = Opts.UseEarlyExit;
    SO.WallClockBudgetMs = Opts.ProbeBudgetMs;
    SO.Cancel = Opts.Cancel;
    Result<VerdictOutcome> Out = analyzeVerdictOnly(
        C, SO, Opts.UseInstanceReuse ? &Arena : nullptr);
    if (!Out.ok()) {
      ErrMsg = Out.error().message();
      return Probe::Undecided;
    }
    if (!Out->decided()) {
      Aborted = true;
      return Probe::Undecided;
    }
    Cache.insert(Canon, cfg::fingerprintConfig(C, /*CanonicalizeCores=*/false),
                 *Out);
    return Out->Schedulable ? Probe::Pass : Probe::Fail;
  }
};

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

// Precondition for every query: the unperturbed config is schedulable, so
// the zero perturbation passes without a probe.

WcetSlackResult wcetSlackQuery(const cfg::Config &Base, int Gid,
                               ProbeEngine &E) {
  WcetSlackResult R;
  R.TaskGid = Gid;
  const cfg::Task &T = Base.taskOf(Base.taskRefOf(Gid));
  cfg::TimeValue MaxW = *std::max_element(T.Wcet.begin(), T.Wcet.end());
  R.DomainMax = T.Deadline - MaxW;
  auto Factor = [&](cfg::TimeValue Slack) {
    return MaxW > 0 ? static_cast<double>(MaxW + Slack) /
                          static_cast<double>(MaxW)
                    : 1.0;
  };
  if (R.DomainMax <= 0) {
    // WCET already sits on the deadline: no room to inflate at all.
    R.SlackTicks = 0;
    R.SlackFactor = 1.0;
    R.UnboundedInDomain = true;
    R.HasPassing = true;
    R.LargestPassing = Base;
    R.Decided = true;
    return R;
  }
  cfg::Config HiCfg = withWcetDelta(Base, Gid, R.DomainMax);
  Probe Edge = E.probe(HiCfg);
  if (Edge == Probe::Undecided)
    return R;
  if (Edge == Probe::Pass) {
    R.SlackTicks = R.DomainMax;
    R.SlackFactor = Factor(R.DomainMax);
    R.UnboundedInDomain = true;
    R.HasPassing = true;
    R.LargestPassing = std::move(HiCfg);
    R.Decided = true;
    return R;
  }
  cfg::TimeValue Lo = 0, Hi = R.DomainMax;
  cfg::Config LoCfg = Base;
  while (Hi - Lo > E.Opts.ToleranceTicks) {
    cfg::TimeValue Mid = Lo + (Hi - Lo) / 2;
    if (Mid == Lo)
      break;
    cfg::Config MidCfg = withWcetDelta(Base, Gid, Mid);
    Probe P = E.probe(MidCfg);
    if (P == Probe::Undecided)
      return R;
    if (P == Probe::Pass) {
      Lo = Mid;
      LoCfg = std::move(MidCfg);
    } else {
      Hi = Mid;
      HiCfg = std::move(MidCfg);
    }
  }
  R.SlackTicks = Lo;
  R.SlackFactor = Factor(Lo);
  R.HasPassing = true;
  R.LargestPassing = std::move(LoCfg);
  R.HasFailing = true;
  R.SmallestFailing = std::move(HiCfg);
  R.Decided = true;
  return R;
}

PeriodIntervalResult periodQuery(const cfg::Config &Base, int Gid,
                                 ProbeEngine &E) {
  PeriodIntervalResult R;
  R.TaskGid = Gid;
  cfg::TaskRef Ref = Base.taskRefOf(Gid);
  const cfg::Task &T = Base.taskOf(Ref);
  R.BasePeriod = T.Period;
  // Messages tie their endpoints' periods together (validate requires
  // equality), so a lone-task period probe can never be valid: empty
  // domain, reported as such.
  for (const cfg::Message &M : Base.Messages)
    if (M.Sender == Ref || M.Receiver == Ref) {
      R.Decided = true;
      return R;
    }
  cfg::TimeValue MaxW = *std::max_element(T.Wcet.begin(), T.Wcet.end());
  // Divisor shrinkages only: every divisor of the base period divides the
  // base hyperperiod, so the global window tables stay within L.
  std::vector<cfg::TimeValue> Divs;
  for (cfg::TimeValue D = 1; D * D <= T.Period; ++D) {
    if (T.Period % D != 0)
      continue;
    if (D >= MaxW && D < T.Period)
      Divs.push_back(D);
    cfg::TimeValue Q = T.Period / D;
    if (Q != D && Q >= MaxW && Q < T.Period)
      Divs.push_back(Q);
  }
  std::sort(Divs.begin(), Divs.end(), std::greater<cfg::TimeValue>());
  R.DomainSize = static_cast<int>(Divs.size());
  if (Divs.empty()) {
    R.MinFeasiblePeriod = R.BasePeriod;
    R.Decided = true;
    return R;
  }
  // Largest passing index in the descending list (feasibility is a prefix
  // under the demand-monotonicity argument; the endpoints actually probed
  // are exact either way).
  int Lo = -1, Hi = static_cast<int>(Divs.size());
  while (Hi - Lo > 1) {
    int Mid = Lo + (Hi - Lo) / 2;
    Probe P = E.probe(withPeriod(Base, Gid, Divs[static_cast<size_t>(Mid)]));
    if (P == Probe::Undecided)
      return R;
    if (P == Probe::Pass)
      Lo = Mid;
    else
      Hi = Mid;
  }
  R.MinFeasiblePeriod = Lo >= 0 ? Divs[static_cast<size_t>(Lo)] : R.BasePeriod;
  R.Decided = true;
  return R;
}

OffsetIntervalResult offsetQuery(const cfg::Config &Base, int Gid,
                                 ProbeEngine &E) {
  OffsetIntervalResult R;
  R.TaskGid = Gid;
  int Part = Base.taskRefOf(Gid).Partition;
  const std::vector<cfg::Window> &Ws =
      Base.Partitions[static_cast<size_t>(Part)].Windows;
  if (Ws.empty()) {
    R.Decided = true;
    return R;
  }
  cfg::TimeValue MinStart = Ws.front().Start, MaxEnd = Ws.front().End;
  for (const cfg::Window &W : Ws) {
    MinStart = std::min(MinStart, W.Start);
    MaxEnd = std::max(MaxEnd, W.End);
  }
  const cfg::TimeValue L = Base.hyperperiod();
  R.DomainLo = -MinStart;
  R.DomainHi = L - MaxEnd;

  // One endpoint search per direction: shift magnitudes grow toward the
  // domain edge, a failing edge brackets a binary search back to the
  // tolerance. Signed = +1 searches later starts, -1 earlier ones.
  auto SearchEdge = [&](cfg::TimeValue Edge, cfg::TimeValue &OutShift,
                        bool &OutUnbounded) -> bool {
    if (Edge == 0) {
      OutShift = 0;
      OutUnbounded = true;
      return true;
    }
    Probe P = E.probe(withWindowShift(Base, Part, Edge));
    if (P == Probe::Undecided)
      return false;
    if (P == Probe::Pass) {
      OutShift = Edge;
      OutUnbounded = true;
      return true;
    }
    cfg::TimeValue Sign = Edge > 0 ? 1 : -1;
    cfg::TimeValue Lo = 0, Hi = Edge * Sign; // magnitudes
    while (Hi - Lo > E.Opts.ToleranceTicks) {
      cfg::TimeValue Mid = Lo + (Hi - Lo) / 2;
      if (Mid == Lo)
        break;
      Probe PM = E.probe(withWindowShift(Base, Part, Mid * Sign));
      if (PM == Probe::Undecided)
        return false;
      if (PM == Probe::Pass)
        Lo = Mid;
      else
        Hi = Mid;
    }
    OutShift = Lo * Sign;
    OutUnbounded = false;
    return true;
  };

  if (!SearchEdge(R.DomainHi, R.MaxShift, R.HiUnbounded))
    return R;
  if (!SearchEdge(R.DomainLo, R.MinShift, R.LoUnbounded))
    return R;
  R.Decided = true;
  return R;
}

BreakdownFrontierResult frontierQuery(const cfg::Config &Base,
                                      ProbeEngine &E) {
  BreakdownFrontierResult R;
  // Smallest factor at which some WCET outgrows its deadline — the config
  // is invalid there, i.e. failing by convention, so it brackets the
  // search from above. Capped at 1000x for degenerate workloads.
  int64_t FInvalid = std::numeric_limits<int64_t>::max();
  for (const cfg::Partition &P : Base.Partitions)
    for (const cfg::Task &T : P.Tasks)
      for (cfg::TimeValue W : T.Wcet) {
        if (W <= 0 ||
            T.Deadline > std::numeric_limits<int64_t>::max() / 1000)
          continue;
        FInvalid = std::min(FInvalid, (1000 * T.Deadline) / W + 1);
      }
  R.DomainMaxPermille = static_cast<int>(
      std::max<int64_t>(1001, std::min<int64_t>(FInvalid, 1000000)));

  Probe Edge = E.probe(withUniformInflation(Base, R.DomainMaxPermille));
  if (Edge == Probe::Undecided)
    return R;
  if (Edge == Probe::Pass) {
    R.FrontierPermille = R.DomainMaxPermille;
    R.UnboundedInDomain = true;
    R.Decided = true;
    return R;
  }
  int Lo = 1000, Hi = R.DomainMaxPermille;
  while (Hi - Lo > E.Opts.FrontierTolerancePermille) {
    int Mid = Lo + (Hi - Lo) / 2;
    if (Mid == Lo)
      break;
    Probe P = E.probe(withUniformInflation(Base, Mid));
    if (P == Probe::Undecided)
      return R;
    if (P == Probe::Pass)
      Lo = Mid;
    else
      Hi = Mid;
  }
  R.FrontierPermille = Lo;
  R.Decided = true;
  return R;
}

} // namespace

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

Result<SensitivityResult>
swa::analysis::analyzeSensitivity(const cfg::Config &Config,
                                  const SensitivityOptions &Options) {
  if (Error E = Config.validate())
    return E;
  obs::ScopedTimer Timer("sensitivity");

  SensitivityResult Res;
  schedtool::VerdictCache LocalCache;
  schedtool::VerdictCache &Cache = Options.Cache ? *Options.Cache : LocalCache;

  // Base verdict first, through the same probe machinery (so it seeds the
  // cache and honors the guard rails).
  {
    obs::ScopedTimer BaseTimer("sensitivity.base");
    ProbeEngine E(Options, Cache);
    Probe P = E.probe(Config);
    Res.TotalProbes += E.Probes;
    if (!E.ErrMsg.empty())
      return Error::failure(E.ErrMsg);
    if (P == Probe::Undecided) {
      Res.Cancelled = Options.Cancel && Options.Cancel->isCancelled();
      return Res;
    }
    Res.BaseDecided = true;
    Res.BaseSchedulable = P == Probe::Pass;
  }

  const int NumTasks = Config.numTasks();
  if (!Res.BaseSchedulable) {
    // Nothing to search: every slack is -1 by definition. The per-task
    // WCET entries still materialize (the certificate of failure is the
    // base config itself) so downstream consumers see one row per task.
    if (Options.QueryWcet) {
      Res.Wcet.assign(static_cast<size_t>(NumTasks), WcetSlackResult());
      for (int G = 0; G < NumTasks; ++G) {
        WcetSlackResult &R = Res.Wcet[static_cast<size_t>(G)];
        R.TaskGid = G;
        const cfg::Task &T = Config.taskOf(Config.taskRefOf(G));
        R.DomainMax =
            T.Deadline - *std::max_element(T.Wcet.begin(), T.Wcet.end());
        R.HasFailing = true;
        R.SmallestFailing = Config;
        R.Decided = true;
      }
    }
    Res.Frontier.Decided = true;
    return Res;
  }

  // Build the query list: one item per (task, parameter), plus the
  // frontier. The fan-out writes results by (kind, gid) index, so the
  // merged vectors are in task order no matter which thread ran what.
  enum { KWcet = 0, KPeriod = 1, KOffset = 2, KFrontier = 3 };
  struct Query {
    int Kind;
    int Gid;
  };
  std::vector<Query> Queries;
  if (Options.QueryWcet) {
    Res.Wcet.assign(static_cast<size_t>(NumTasks), WcetSlackResult());
    for (int G = 0; G < NumTasks; ++G)
      Queries.push_back({KWcet, G});
  }
  if (Options.QueryPeriod) {
    Res.Periods.assign(static_cast<size_t>(NumTasks), PeriodIntervalResult());
    for (int G = 0; G < NumTasks; ++G)
      Queries.push_back({KPeriod, G});
  }
  if (Options.QueryOffset) {
    Res.Offsets.assign(static_cast<size_t>(NumTasks), OffsetIntervalResult());
    for (int G = 0; G < NumTasks; ++G)
      Queries.push_back({KOffset, G});
  }
  if (Options.QueryFrontier)
    Queries.push_back({KFrontier, -1});

  ThreadPool Pool(std::max(1, Options.Workers));
  std::vector<int> ProbeCounts(Queries.size(), 0);
  std::vector<std::string> Errors(Queries.size());
  Pool.parallelFor(static_cast<int>(Queries.size()), [&](int I) {
    const Query &Q = Queries[static_cast<size_t>(I)];
    const char *Phase = Q.Kind == KWcet      ? "sensitivity.wcet"
                        : Q.Kind == KPeriod  ? "sensitivity.period"
                        : Q.Kind == KOffset  ? "sensitivity.offset"
                                             : "sensitivity.frontier";
    obs::ScopedTimer QueryTimer(Phase);
    obs::Span QuerySpan("query", "sensitivity");
    QuerySpan.arg("param", Q.Kind);
    QuerySpan.arg("task", Q.Gid);
    // Resolved here, not outside the fan-out: counter cells are
    // single-writer and live in the *calling thread's* shard.
    if (obs::enabled())
      obs::Registry::global().counter("sensitivity.queries").add(1);
    ProbeEngine E(Options, Cache);
    switch (Q.Kind) {
    case KWcet: {
      WcetSlackResult R = wcetSlackQuery(Config, Q.Gid, E);
      R.Probes = E.Probes;
      Res.Wcet[static_cast<size_t>(Q.Gid)] = std::move(R);
      break;
    }
    case KPeriod: {
      PeriodIntervalResult R = periodQuery(Config, Q.Gid, E);
      R.Probes = E.Probes;
      Res.Periods[static_cast<size_t>(Q.Gid)] = std::move(R);
      break;
    }
    case KOffset: {
      OffsetIntervalResult R = offsetQuery(Config, Q.Gid, E);
      R.Probes = E.Probes;
      Res.Offsets[static_cast<size_t>(Q.Gid)] = std::move(R);
      break;
    }
    default: {
      BreakdownFrontierResult R = frontierQuery(Config, E);
      R.Probes = E.Probes;
      Res.Frontier = R;
      break;
    }
    }
    ProbeCounts[static_cast<size_t>(I)] = E.Probes;
    Errors[static_cast<size_t>(I)] = E.ErrMsg;
    QuerySpan.arg("probes", E.Probes);
  });

  for (size_t I = 0; I < Queries.size(); ++I) {
    // First model error in query order wins — deterministic, like the
    // search's first-failing-candidate rule.
    if (!Errors[I].empty())
      return Error::failure(Errors[I]);
    Res.TotalProbes += ProbeCounts[I];
  }
  Res.Cancelled = Options.Cancel && Options.Cancel->isCancelled();
  return Res;
}

//===----------------------------------------------------------------------===//
// Rendering & reporting
//===----------------------------------------------------------------------===//

std::string SensitivityResult::summary() const {
  std::string S;
  S += formatString(
      "base: %s%s\n",
      !BaseDecided ? "undecided"
                   : (BaseSchedulable ? "schedulable" : "unschedulable"),
      Cancelled ? " (cancelled)" : "");
  S += formatString("probes: %d\n", TotalProbes);
  for (const WcetSlackResult &R : Wcet) {
    if (!R.Decided) {
      S += formatString("wcet task=%d: undecided\n", R.TaskGid);
      continue;
    }
    S += formatString(
        "wcet task=%d: slack=%lld/%lld factor=%.4f%s%s%s probes=%d\n",
        R.TaskGid, static_cast<long long>(R.SlackTicks),
        static_cast<long long>(R.DomainMax), R.SlackFactor,
        R.UnboundedInDomain ? " (domain edge)" : "",
        R.HasPassing ? " +pass" : "", R.HasFailing ? " +fail" : "",
        R.Probes);
  }
  for (const PeriodIntervalResult &R : Periods) {
    if (!R.Decided) {
      S += formatString("period task=%d: undecided\n", R.TaskGid);
      continue;
    }
    S += formatString("period task=%d: base=%lld min=%lld domain=%d "
                      "probes=%d\n",
                      R.TaskGid, static_cast<long long>(R.BasePeriod),
                      static_cast<long long>(R.MinFeasiblePeriod),
                      R.DomainSize, R.Probes);
  }
  for (const OffsetIntervalResult &R : Offsets) {
    if (!R.Decided) {
      S += formatString("offset task=%d: undecided\n", R.TaskGid);
      continue;
    }
    S += formatString(
        "offset task=%d: feasible=[%lld,%lld] domain=[%lld,%lld]%s%s "
        "probes=%d\n",
        R.TaskGid, static_cast<long long>(R.MinShift),
        static_cast<long long>(R.MaxShift),
        static_cast<long long>(R.DomainLo),
        static_cast<long long>(R.DomainHi),
        R.LoUnbounded ? " lo-edge" : "", R.HiUnbounded ? " hi-edge" : "",
        R.Probes);
  }
  if (Frontier.Decided)
    S += formatString("frontier: %d/%d permille%s probes=%d\n",
                      Frontier.FrontierPermille, Frontier.DomainMaxPermille,
                      Frontier.UnboundedInDomain ? " (domain edge)" : "",
                      Frontier.Probes);
  return S;
}

void swa::analysis::fillSensitivityReport(obs::RunReport &Report,
                                          const SensitivityResult &Res,
                                          double ElapsedSec) {
  Report.addCount("base.schedulable", Res.BaseSchedulable ? 1 : 0);
  Report.addCount("cancelled", Res.Cancelled ? 1 : 0);
  Report.addCount("probes", static_cast<uint64_t>(Res.TotalProbes));
  size_t Queries = Res.Wcet.size() + Res.Periods.size() + Res.Offsets.size() +
                   (Res.Frontier.Decided || Res.Frontier.Probes > 0 ? 1 : 0);
  Report.addCount("queries", static_cast<uint64_t>(Queries));
  if (Queries > 0)
    Report.addStat("probes_per_query", static_cast<double>(Res.TotalProbes) /
                                           static_cast<double>(Queries));
  if (ElapsedSec > 0)
    Report.addStat("probes_per_sec", static_cast<double>(Res.TotalProbes) /
                                         ElapsedSec);
  bool HaveSlack = false;
  cfg::TimeValue MinSlack = 0, MaxSlack = 0;
  for (const WcetSlackResult &R : Res.Wcet) {
    if (!R.Decided || R.SlackTicks < 0)
      continue;
    if (!HaveSlack) {
      MinSlack = MaxSlack = R.SlackTicks;
      HaveSlack = true;
    } else {
      MinSlack = std::min(MinSlack, R.SlackTicks);
      MaxSlack = std::max(MaxSlack, R.SlackTicks);
    }
  }
  if (HaveSlack) {
    Report.addCount("wcet.min_slack", static_cast<uint64_t>(MinSlack));
    Report.addCount("wcet.max_slack", static_cast<uint64_t>(MaxSlack));
  }
  if (Res.Frontier.Decided && Res.Frontier.FrontierPermille >= 0)
    Report.addCount("frontier_permille",
                    static_cast<uint64_t>(Res.Frontier.FrontierPermille));
}
