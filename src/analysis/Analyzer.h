//===- analysis/Analyzer.h - One-call schedulability analysis ---*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top of the pipeline the paper describes in §4: configuration in,
/// verdict out. Runs Algorithm 1 (core::buildModel), simulates one run of
/// the NSA over a hyperperiod, maps the NSA trace to the system trace, and
/// checks the schedulability criterion.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_ANALYSIS_ANALYZER_H
#define SWA_ANALYSIS_ANALYZER_H

#include "analysis/Schedulability.h"
#include "core/InstanceBuilder.h"
#include "nsa/Simulator.h"

namespace swa {
namespace analysis {

struct AnalyzeOutcome {
  core::BuiltModel Model;
  nsa::SimResult Sim;
  core::SystemTrace Trace;
  AnalysisResult Analysis;

  /// Cross-check: the criterion verdict must agree with the model's
  /// is_failed flags in the final state (a disagreement indicates an
  /// engine or model bug).
  bool failureFlagsConsistent() const;
};

/// Builds, simulates and analyzes \p Config over one hyperperiod.
Result<AnalyzeOutcome>
analyzeConfiguration(const cfg::Config &Config,
                     const nsa::SimOptions &SimOptions = {});

/// Verdict-only analysis: no synchronization trace is materialized and no
/// per-job statistics are computed.
struct VerdictOutcome {
  bool Schedulable = false;
  /// Tasks whose is_failed flag tripped (0 when schedulable). Under a
  /// StopOnFirstMiss run this counts only the tasks that miss at the
  /// first-miss instant — a subset of the full-run count; the
  /// instant-exact fields below are the ones identical across full,
  /// early-exit and decomposed evaluation.
  int64_t FailedTasks = 0;
  /// Per-task-gid failure flags (same caveat as FailedTasks).
  std::vector<char> TaskFailed;
  uint64_t ActionCount = 0;
  /// Model time of the first deadline miss; -1 when schedulable or
  /// undecided. A full run, a StopOnFirstMiss run and a merged
  /// per-component evaluation all compute the same value.
  int64_t FirstMissTime = -1;
  /// Global task ids missing exactly at FirstMissTime, sorted ascending
  /// (empty when schedulable or undecided). Same invariance as
  /// FirstMissTime.
  std::vector<int32_t> FirstMissTasks;
  /// Why the underlying run stopped. Cancelled/BudgetExceeded mean the
  /// guard rails ended the run before a verdict existed: Schedulable is
  /// false and TaskFailed is all-clear, but neither is a judgement on the
  /// configuration. DeadlineMiss is a decided unschedulable verdict (the
  /// first-miss early exit fired).
  nsa::StopReason Stop = nsa::StopReason::Completed;

  /// True when the run finished and the verdict fields are meaningful.
  bool decided() const {
    return Stop == nsa::StopReason::Completed ||
           Stop == nsa::StopReason::DeadlineMiss;
  }
};

/// The config-search inner loop: simulates with SimOptions::RecordTrace
/// off and reads the verdict from the model's is_failed flags in the
/// final state. Over a full hyperperiod the deadline-miss edges make the
/// flags agree with the trace criterion (the invariant
/// AnalyzeOutcome::failureFlagsConsistent checks), so this is the same
/// verdict as analyzeConfiguration at a fraction of the cost. Falls back
/// to the full pipeline for models without failure flags.
///
/// \p SimOptions carries the guard rails (wall-clock budget, cancel
/// token); RecordTrace is forced internally. A run the guard rails ended
/// returns *success* with VerdictOutcome::decided() == false — callers
/// distinguish "no verdict" from a model error without string matching.
Result<VerdictOutcome>
analyzeVerdictOnly(const cfg::Config &Config,
                   const nsa::SimOptions &SimOptions = {});

class ModelArena;

/// Arena-accelerated variant: when \p Arena is non-null and a model of
/// the same shape (cfg::fingerprintShape) is cached, the candidate's
/// window tables are patched into the cached model (core::rebindWindows)
/// and its simulator is reused — no Algorithm-1 rebuild. Misses build
/// fresh (with build metrics suppressed; see ModelArena.h on why) and
/// seed the arena. The verdict is identical to the plain overload for
/// every config; a null \p Arena is exactly the plain overload.
Result<VerdictOutcome> analyzeVerdictOnly(const cfg::Config &Config,
                                          const nsa::SimOptions &SimOptions,
                                          ModelArena *Arena);

/// One decomposed component's verdict plus the map from its local task
/// gids to the gids of the original (pre-decomposition) configuration.
struct ComponentVerdict {
  VerdictOutcome Verdict;
  /// GidMap[local gid] = original gid; size == component task count.
  std::vector<int32_t> GidMap;
};

/// Merges per-component verdicts back into the verdict the monolithic
/// simulation of the original configuration would produce (components are
/// independent — no messages cross them — so their traces interleave
/// without interaction; see DESIGN.md, "Search-side caching, early exit &
/// decomposition"). \p TotalTasks is the original config's task count.
///
/// Merge rules: an undecided component (guard-rail stop) makes the whole
/// verdict undecided with that component's StopReason; otherwise
/// Schedulable is the conjunction, TaskFailed/FailedTasks the union,
/// ActionCount the sum, FirstMissTime the minimum over components, and
/// FirstMissTasks the sorted union over the components attaining that
/// minimum. Stop is Completed when all components completed, DeadlineMiss
/// when any early-exited.
VerdictOutcome
mergeComponentVerdicts(const std::vector<ComponentVerdict> &Components,
                       int TotalTasks);

} // namespace analysis
} // namespace swa

#endif // SWA_ANALYSIS_ANALYZER_H
