//===- analysis/Schedulability.cpp - Criterion and job statistics ----------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Schedulability.h"

#include "obs/Timer.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>

using namespace swa;
using namespace swa::analysis;

namespace {

/// Per-task accumulation state while scanning the trace.
struct TaskScan {
  int64_t OpenStart = -1; ///< Start of the currently executing interval.
  std::vector<JobStats> Jobs;
};

} // namespace

AnalysisResult swa::analysis::analyzeTrace(const cfg::Config &Config,
                                           const core::SystemTrace &Trace) {
  obs::ScopedTimer Timer("criterion");
  AnalysisResult Res;
  int NT = Config.numTasks();
  cfg::TimeValue L = Config.hyperperiod();

  // Pre-create the full job table: every job of the hyperperiod must be
  // accounted for, including jobs that never produced any event.
  std::vector<TaskScan> Scan(static_cast<size_t>(NT));
  for (int G = 0; G < NT; ++G) {
    const cfg::Task &T = Config.taskOf(Config.taskRefOf(G));
    int64_t NumJobs = L / T.Period;
    Scan[static_cast<size_t>(G)].Jobs.resize(
        static_cast<size_t>(NumJobs));
    for (int64_t K = 0; K < NumJobs; ++K) {
      JobStats &J = Scan[static_cast<size_t>(G)].Jobs[
          static_cast<size_t>(K)];
      J.TaskGid = G;
      J.JobIndex = static_cast<int>(K);
      J.ReleaseTime = K * T.Period;
    }
  }

  auto JobOf = [&](int Gid, int64_t Time,
                   bool EndsJob) -> JobStats * {
    const cfg::Task &T = Config.taskOf(Config.taskRefOf(Gid));
    int64_t K = Time / T.Period;
    // A FIN landing exactly on a release boundary belongs to the previous
    // job (deadline == period); a new job cannot finish at its release.
    if (EndsJob && Time % T.Period == 0 && Time > 0)
      K = Time / T.Period - 1;
    auto &Jobs = Scan[static_cast<size_t>(Gid)].Jobs;
    if (K < 0 || static_cast<size_t>(K) >= Jobs.size())
      return nullptr; // Event beyond the analyzed hyperperiod.
    return &Jobs[static_cast<size_t>(K)];
  };

  for (const core::SysEvent &E : Trace) {
    TaskScan &TS = Scan[static_cast<size_t>(E.TaskGid)];
    switch (E.Type) {
    case core::SysEventType::READY: {
      if (JobStats *J = JobOf(E.TaskGid, E.Time, /*EndsJob=*/false))
        if (J->ReadyTime < 0)
          J->ReadyTime = E.Time;
      break;
    }
    case core::SysEventType::EX: {
      // Nested EX without PR/FIN would be a model error; keep the first.
      if (TS.OpenStart < 0)
        TS.OpenStart = E.Time;
      break;
    }
    case core::SysEventType::PR: {
      if (TS.OpenStart < 0)
        break; // PR without EX: ignore (cannot happen in our models).
      if (JobStats *J = JobOf(E.TaskGid, TS.OpenStart, /*EndsJob=*/false)) {
        if (E.Time > TS.OpenStart) {
          J->Intervals.push_back({TS.OpenStart, E.Time});
          J->ExecTotal += E.Time - TS.OpenStart;
          ++J->Preemptions;
        }
      }
      TS.OpenStart = -1;
      break;
    }
    case core::SysEventType::FIN: {
      JobStats *J = nullptr;
      if (TS.OpenStart >= 0) {
        J = JobOf(E.TaskGid, TS.OpenStart, /*EndsJob=*/false);
        if (J && E.Time > TS.OpenStart) {
          J->Intervals.push_back({TS.OpenStart, E.Time});
          J->ExecTotal += E.Time - TS.OpenStart;
        }
        TS.OpenStart = -1;
      } else {
        J = JobOf(E.TaskGid, E.Time, /*EndsJob=*/true);
      }
      if (J && J->FinishTime < 0)
        J->FinishTime = E.Time;
      break;
    }
    }
  }

  // Evaluate the criterion.
  Res.WorstResponse.assign(static_cast<size_t>(NT), 0);
  Res.Schedulable = true;
  for (int G = 0; G < NT; ++G) {
    cfg::TaskRef Ref = Config.taskRefOf(G);
    const cfg::Task &T = Config.taskOf(Ref);
    cfg::TimeValue C = Config.boundWcet(Ref);
    for (JobStats &J : Scan[static_cast<size_t>(G)].Jobs) {
      ++Res.TotalJobs;
      int64_t AbsDeadline = J.ReleaseTime + T.Deadline;
      J.Completed = J.ExecTotal == C && J.FinishTime >= 0 &&
                    J.FinishTime <= AbsDeadline;
      if (!J.Completed) {
        ++Res.MissedJobs;
        if (Res.Schedulable) {
          Res.Schedulable = false;
          Res.FirstViolation = formatString(
              "task %d ('%s') job %d: executed %lld of %lld ticks by its "
              "deadline %lld",
              G, T.Name.c_str(), J.JobIndex,
              static_cast<long long>(J.ExecTotal),
              static_cast<long long>(C),
              static_cast<long long>(AbsDeadline));
        }
      } else {
        Res.WorstResponse[static_cast<size_t>(G)] =
            std::max(Res.WorstResponse[static_cast<size_t>(G)],
                     J.responseTime());
      }
      Res.Jobs.push_back(std::move(J));
    }
    if (Res.MissedJobs > 0)
      continue;
  }
  for (int G = 0; G < NT; ++G) {
    // Worst response is undefined for tasks with missed jobs.
    bool AnyMiss = false;
    for (const JobStats &J : Res.Jobs)
      if (J.TaskGid == G && !J.Completed)
        AnyMiss = true;
    if (AnyMiss)
      Res.WorstResponse[static_cast<size_t>(G)] = -1;
  }
  return Res;
}

bool swa::analysis::jobTracesEquivalent(const AnalysisResult &A,
                                        const AnalysisResult &B) {
  if (A.Jobs.size() != B.Jobs.size())
    return false;
  // Jobs are emitted in (task, job-index) order by construction.
  for (size_t I = 0; I < A.Jobs.size(); ++I) {
    const JobStats &JA = A.Jobs[I];
    const JobStats &JB = B.Jobs[I];
    if (JA.TaskGid != JB.TaskGid || JA.JobIndex != JB.JobIndex ||
        JA.ReadyTime != JB.ReadyTime || JA.FinishTime != JB.FinishTime ||
        !(JA.Intervals == JB.Intervals))
      return false;
  }
  return true;
}
