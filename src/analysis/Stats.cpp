//===- analysis/Stats.cpp - Utilization and load statistics -----------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Stats.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace swa;
using namespace swa::analysis;

TraceStats swa::analysis::computeStats(const cfg::Config &Config,
                                       const AnalysisResult &Result) {
  TraceStats S;
  size_t NP = Config.Partitions.size();
  size_t NC = Config.Cores.size();
  int NT = Config.numTasks();

  S.Partitions.resize(NP);
  for (size_t P = 0; P < NP; ++P) {
    S.Partitions[P].Partition = static_cast<int>(P);
    S.Partitions[P].Demand =
        Config.partitionUtilization(static_cast<int>(P));
    S.Partitions[P].WindowShare =
        Config.windowShare(static_cast<int>(P));
  }
  S.Cores.resize(NC);
  for (size_t C = 0; C < NC; ++C)
    S.Cores[C].Core = static_cast<int>(C);
  for (size_t P = 0; P < NP; ++P)
    if (Config.Partitions[P].Core >= 0)
      S.Cores[static_cast<size_t>(Config.Partitions[P].Core)].Demand +=
          S.Partitions[P].Demand;

  S.Tasks.resize(static_cast<size_t>(NT));
  for (int G = 0; G < NT; ++G)
    S.Tasks[static_cast<size_t>(G)].TaskGid = G;

  for (const JobStats &J : Result.Jobs) {
    cfg::TaskRef Ref = Config.taskRefOf(J.TaskGid);
    int P = Ref.Partition;
    int C = Config.Partitions[static_cast<size_t>(P)].Core;
    S.Partitions[static_cast<size_t>(P)].BusyTicks += J.ExecTotal;
    if (C >= 0)
      S.Cores[static_cast<size_t>(C)].BusyTicks += J.ExecTotal;

    TaskResponseStats &T = S.Tasks[static_cast<size_t>(J.TaskGid)];
    if (J.Completed) {
      int64_t R = J.responseTime();
      T.Best = T.Best < 0 ? R : std::min(T.Best, R);
      T.Worst = std::max(T.Worst, R);
      T.Mean += static_cast<double>(R);
      ++T.Completed;
    } else {
      ++T.Missed;
    }
  }
  for (TaskResponseStats &T : S.Tasks)
    if (T.Completed > 0)
      T.Mean /= static_cast<double>(T.Completed);

  cfg::TimeValue L = Config.hyperperiod();
  for (CoreStats &C : S.Cores)
    C.BusyShare = L > 0 ? static_cast<double>(C.BusyTicks) /
                              static_cast<double>(L)
                        : 0;
  return S;
}

std::string swa::analysis::renderStats(const cfg::Config &Config,
                                       const TraceStats &S) {
  std::string Out = "partitions:\n";
  for (const PartitionStats &P : S.Partitions)
    Out += formatString(
        "  %-14s demand=%.3f windows=%.3f busy=%lld ticks\n",
        Config.Partitions[static_cast<size_t>(P.Partition)].Name.c_str(),
        P.Demand, P.WindowShare, static_cast<long long>(P.BusyTicks));
  Out += "cores:\n";
  for (const CoreStats &C : S.Cores)
    Out += formatString("  %-14s demand=%.3f observed-busy=%.3f\n",
                        Config.Cores[static_cast<size_t>(C.Core)]
                            .Name.c_str(),
                        C.Demand, C.BusyShare);
  Out += "task responses:\n";
  for (const TaskResponseStats &T : S.Tasks) {
    const cfg::Task &Task = Config.taskOf(Config.taskRefOf(T.TaskGid));
    Out += formatString(
        "  %-14s best=%lld worst=%lld mean=%.1f completed=%lld "
        "missed=%lld\n",
        Task.Name.c_str(), static_cast<long long>(T.Best),
        static_cast<long long>(T.Worst), T.Mean,
        static_cast<long long>(T.Completed),
        static_cast<long long>(T.Missed));
  }
  return Out;
}

std::string swa::analysis::jobsToCsv(const cfg::Config &Config,
                                     const AnalysisResult &Result) {
  std::string Out =
      "task,job,release,ready,finish,exec,completed,intervals\n";
  for (const JobStats &J : Result.Jobs) {
    const cfg::Task &T = Config.taskOf(Config.taskRefOf(J.TaskGid));
    std::string Intervals;
    for (const ExecInterval &I : J.Intervals) {
      if (!Intervals.empty())
        Intervals += ' ';
      Intervals += formatString("%lld-%lld",
                                static_cast<long long>(I.Start),
                                static_cast<long long>(I.End));
    }
    Out += formatString("%s,%d,%lld,%lld,%lld,%lld,%d,%s\n",
                        T.Name.c_str(), J.JobIndex,
                        static_cast<long long>(J.ReleaseTime),
                        static_cast<long long>(J.ReadyTime),
                        static_cast<long long>(J.FinishTime),
                        static_cast<long long>(J.ExecTotal),
                        J.Completed ? 1 : 0, Intervals.c_str());
  }
  return Out;
}
