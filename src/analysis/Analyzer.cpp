//===- analysis/Analyzer.cpp - One-call schedulability analysis ------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"

#include "obs/Metrics.h"
#include "obs/Timer.h"

using namespace swa;
using namespace swa::analysis;

bool AnalyzeOutcome::failureFlagsConsistent() const {
  if (Model.IsFailedSlot < 0)
    return true;
  int NT = static_cast<int>(Model.TaskAutomaton.size());
  bool AnyFailed = false;
  for (int G = 0; G < NT; ++G)
    if (Sim.Final.Store[static_cast<size_t>(Model.IsFailedSlot + G)] != 0)
      AnyFailed = true;
  // A job can also miss by never completing without tripping is_failed
  // only if the horizon cut it off; within a full hyperperiod the deadline
  // edges guarantee agreement.
  return AnyFailed == !Analysis.Schedulable;
}

Result<AnalyzeOutcome>
swa::analysis::analyzeConfiguration(const cfg::Config &Config,
                                    const nsa::SimOptions &SimOptions) {
  Result<core::BuiltModel> Model = core::buildModel(Config);
  if (!Model.ok())
    return Model.takeError();

  AnalyzeOutcome Out;
  Out.Model = std::move(*Model);

  nsa::Simulator Sim(*Out.Model.Net);
  Out.Sim = Sim.run(SimOptions);
  if (!Out.Sim.ok())
    return Error::failure("simulation failed: " + Out.Sim.Error);

  {
    obs::ScopedTimer Timer("analyze");
    {
      obs::ScopedTimer MapTimer("map_trace");
      Out.Trace = core::mapTrace(Out.Model, Out.Sim.Events);
    }
    Out.Analysis = analyzeTrace(Config, Out.Trace);
  }
  if (obs::enabled())
    obs::Registry::global().counter("analysis.configurations").add(1);
  return Out;
}

Result<VerdictOutcome>
swa::analysis::analyzeVerdictOnly(const cfg::Config &Config) {
  Result<core::BuiltModel> Model = core::buildModel(Config);
  if (!Model.ok())
    return Model.takeError();

  int NT = static_cast<int>(Model->TaskAutomaton.size());
  VerdictOutcome Out;
  Out.TaskFailed.assign(static_cast<size_t>(NT), 0);

  if (Model->IsFailedSlot < 0) {
    // No failure flags in this model: take the full pipeline and derive
    // the per-task flags from the job statistics.
    Result<AnalyzeOutcome> Full = analyzeConfiguration(Config);
    if (!Full.ok())
      return Full.takeError();
    Out.Schedulable = Full->Analysis.Schedulable;
    Out.ActionCount = Full->Sim.ActionCount;
    for (const JobStats &J : Full->Analysis.Jobs)
      if (!J.Completed && J.TaskGid >= 0 && J.TaskGid < NT)
        Out.TaskFailed[static_cast<size_t>(J.TaskGid)] = 1;
    for (char F : Out.TaskFailed)
      Out.FailedTasks += F ? 1 : 0;
    return Out;
  }

  nsa::Simulator Sim(*Model->Net);
  nsa::SimOptions Opt;
  Opt.RecordTrace = false;
  nsa::SimResult R = Sim.run(Opt);
  if (!R.ok())
    return Error::failure("simulation failed: " + R.Error);
  Out.ActionCount = R.ActionCount;
  for (int G = 0; G < NT; ++G) {
    if (R.Final.Store[static_cast<size_t>(Model->IsFailedSlot + G)] != 0) {
      Out.TaskFailed[static_cast<size_t>(G)] = 1;
      ++Out.FailedTasks;
    }
  }
  Out.Schedulable = Out.FailedTasks == 0;
  if (obs::enabled())
    obs::Registry::global().counter("analysis.configurations").add(1);
  return Out;
}
