//===- analysis/Analyzer.cpp - One-call schedulability analysis ------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"

#include "obs/Metrics.h"
#include "obs/Timer.h"

using namespace swa;
using namespace swa::analysis;

bool AnalyzeOutcome::failureFlagsConsistent() const {
  if (Model.IsFailedSlot < 0)
    return true;
  int NT = static_cast<int>(Model.TaskAutomaton.size());
  bool AnyFailed = false;
  for (int G = 0; G < NT; ++G)
    if (Sim.Final.Store[static_cast<size_t>(Model.IsFailedSlot + G)] != 0)
      AnyFailed = true;
  // A job can also miss by never completing without tripping is_failed
  // only if the horizon cut it off; within a full hyperperiod the deadline
  // edges guarantee agreement.
  return AnyFailed == !Analysis.Schedulable;
}

Result<AnalyzeOutcome>
swa::analysis::analyzeConfiguration(const cfg::Config &Config,
                                    const nsa::SimOptions &SimOptions) {
  Result<core::BuiltModel> Model = core::buildModel(Config);
  if (!Model.ok())
    return Model.takeError();

  AnalyzeOutcome Out;
  Out.Model = std::move(*Model);

  nsa::Simulator Sim(*Out.Model.Net);
  Out.Sim = Sim.run(SimOptions);
  if (!Out.Sim.ok())
    return Error::failure("simulation failed: " + Out.Sim.Error);

  {
    obs::ScopedTimer Timer("analyze");
    {
      obs::ScopedTimer MapTimer("map_trace");
      Out.Trace = core::mapTrace(Out.Model, Out.Sim.Events);
    }
    Out.Analysis = analyzeTrace(Config, Out.Trace);
  }
  if (obs::enabled())
    obs::Registry::global().counter("analysis.configurations").add(1);
  return Out;
}

Result<VerdictOutcome>
swa::analysis::analyzeVerdictOnly(const cfg::Config &Config,
                                  const nsa::SimOptions &SimOptions) {
  Result<core::BuiltModel> Model = core::buildModel(Config);
  if (!Model.ok())
    return Model.takeError();

  int NT = static_cast<int>(Model->TaskAutomaton.size());
  VerdictOutcome Out;
  Out.TaskFailed.assign(static_cast<size_t>(NT), 0);

  // With failure flags the trace is never needed; without them the trace
  // feeds the criterion fallback. Either way the run is executed here so
  // a guard-rail stop (budget/cancel) surfaces structurally instead of as
  // an opaque error string.
  const bool HasFlags = Model->IsFailedSlot >= 0;
  nsa::Simulator Sim(*Model->Net);
  nsa::SimOptions Opt = SimOptions;
  Opt.RecordTrace = !HasFlags;
  nsa::SimResult R = Sim.run(Opt);
  Out.ActionCount = R.ActionCount;
  if (!R.ok()) {
    if (R.Stop == nsa::StopReason::Cancelled ||
        R.Stop == nsa::StopReason::BudgetExceeded) {
      Out.Stop = R.Stop;
      return Out; // No verdict: decided() == false.
    }
    return Error::failure("simulation failed: " + R.Error);
  }

  if (HasFlags) {
    for (int G = 0; G < NT; ++G) {
      if (R.Final.Store[static_cast<size_t>(Model->IsFailedSlot + G)] !=
          0) {
        Out.TaskFailed[static_cast<size_t>(G)] = 1;
        ++Out.FailedTasks;
      }
    }
    Out.Schedulable = Out.FailedTasks == 0;
  } else {
    // No failure flags in this model: run the criterion on the mapped
    // trace and derive the per-task flags from the job statistics.
    core::SystemTrace Trace = core::mapTrace(*Model, R.Events);
    AnalysisResult Analysis = analyzeTrace(Config, Trace);
    Out.Schedulable = Analysis.Schedulable;
    for (const JobStats &J : Analysis.Jobs)
      if (!J.Completed && J.TaskGid >= 0 && J.TaskGid < NT)
        Out.TaskFailed[static_cast<size_t>(J.TaskGid)] = 1;
    for (char F : Out.TaskFailed)
      Out.FailedTasks += F ? 1 : 0;
  }
  if (obs::enabled())
    obs::Registry::global().counter("analysis.configurations").add(1);
  return Out;
}
