//===- analysis/Analyzer.cpp - One-call schedulability analysis ------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"

#include "analysis/ModelArena.h"
#include "obs/Metrics.h"
#include "obs/Timer.h"

#include <algorithm>

using namespace swa;
using namespace swa::analysis;

bool AnalyzeOutcome::failureFlagsConsistent() const {
  if (Model.IsFailedSlot < 0)
    return true;
  int NT = static_cast<int>(Model.TaskAutomaton.size());
  bool AnyFailed = false;
  for (int G = 0; G < NT; ++G)
    if (Sim.Final.Store[static_cast<size_t>(Model.IsFailedSlot + G)] != 0)
      AnyFailed = true;
  // A job can also miss by never completing without tripping is_failed
  // only if the horizon cut it off; within a full hyperperiod the deadline
  // edges guarantee agreement.
  return AnyFailed == !Analysis.Schedulable;
}

Result<AnalyzeOutcome>
swa::analysis::analyzeConfiguration(const cfg::Config &Config,
                                    const nsa::SimOptions &SimOptions) {
  Result<core::BuiltModel> Model = core::buildModel(Config);
  if (!Model.ok())
    return Model.takeError();

  AnalyzeOutcome Out;
  Out.Model = std::move(*Model);

  nsa::Simulator Sim(*Out.Model.Net);
  Out.Sim = Sim.run(SimOptions);
  if (!Out.Sim.ok())
    return Error::failure("simulation failed: " + Out.Sim.Error);

  {
    obs::ScopedTimer Timer("analyze");
    {
      obs::ScopedTimer MapTimer("map_trace");
      Out.Trace = core::mapTrace(Out.Model, Out.Sim.Events);
    }
    Out.Analysis = analyzeTrace(Config, Out.Trace);
  }
  if (obs::enabled())
    obs::Registry::global().counter("analysis.configurations").add(1);
  return Out;
}

namespace {

/// The shared back half of both analyzeVerdictOnly overloads: run \p Sim
/// over \p Model and extract the verdict. The caller owns model and
/// simulator so the arena overload can substitute cached ones.
Result<VerdictOutcome> runVerdictOn(const core::BuiltModel &Model,
                                    nsa::Simulator &Sim,
                                    const cfg::Config &Config,
                                    const nsa::SimOptions &SimOptions) {
  int NT = static_cast<int>(Model.TaskAutomaton.size());
  VerdictOutcome Out;
  Out.TaskFailed.assign(static_cast<size_t>(NT), 0);

  // With failure flags the trace is never needed; without them the trace
  // feeds the criterion fallback. Either way the run is executed here so
  // a guard-rail stop (budget/cancel) surfaces structurally instead of as
  // an opaque error string.
  const bool HasFlags = Model.IsFailedSlot >= 0;
  nsa::SimOptions Opt = SimOptions;
  Opt.RecordTrace = !HasFlags;
  if (HasFlags) {
    // Watch the contiguous is_failed block so every run — early-exit or
    // full — reports the first-miss instant and its task set.
    Opt.FailSlotBase = Model.IsFailedSlot;
    Opt.FailSlotCount = NT;
  } else {
    // Early exit needs the flags; without them fall through to the full
    // trace criterion.
    Opt.StopOnFirstMiss = false;
  }
  nsa::SimResult R = Sim.run(Opt);
  Out.ActionCount = R.ActionCount;
  if (!R.ok()) {
    if (R.Stop == nsa::StopReason::Cancelled ||
        R.Stop == nsa::StopReason::BudgetExceeded) {
      Out.Stop = R.Stop;
      return Out; // No verdict: decided() == false.
    }
    return Error::failure("simulation failed: " + R.Error);
  }

  if (HasFlags) {
    Out.Stop = R.Stop;
    for (int G = 0; G < NT; ++G) {
      if (R.Final.Store[static_cast<size_t>(Model.IsFailedSlot + G)] !=
          0) {
        Out.TaskFailed[static_cast<size_t>(G)] = 1;
        ++Out.FailedTasks;
      }
    }
    Out.Schedulable = Out.FailedTasks == 0;
    Out.FirstMissTime = R.FirstMissTime;
    Out.FirstMissTasks = R.FirstMissSlots;
  } else {
    // No failure flags in this model: run the criterion on the mapped
    // trace and derive the per-task flags from the job statistics. The
    // first-miss instant is the earliest absolute deadline among missed
    // jobs — exactly when the watch would have seen the flag trip.
    core::SystemTrace Trace = core::mapTrace(Model, R.Events);
    AnalysisResult Analysis = analyzeTrace(Config, Trace);
    Out.Schedulable = Analysis.Schedulable;
    for (const JobStats &J : Analysis.Jobs) {
      if (J.Completed || J.TaskGid < 0 || J.TaskGid >= NT)
        continue;
      Out.TaskFailed[static_cast<size_t>(J.TaskGid)] = 1;
      int64_t MissAt =
          J.ReleaseTime + Config.taskOf(Config.taskRefOf(J.TaskGid)).Deadline;
      if (Out.FirstMissTime < 0 || MissAt < Out.FirstMissTime) {
        Out.FirstMissTime = MissAt;
        Out.FirstMissTasks.clear();
      }
      if (MissAt == Out.FirstMissTime)
        Out.FirstMissTasks.push_back(J.TaskGid);
    }
    std::sort(Out.FirstMissTasks.begin(), Out.FirstMissTasks.end());
    Out.FirstMissTasks.erase(
        std::unique(Out.FirstMissTasks.begin(), Out.FirstMissTasks.end()),
        Out.FirstMissTasks.end());
    for (char F : Out.TaskFailed)
      Out.FailedTasks += F ? 1 : 0;
  }
  if (obs::enabled())
    obs::Registry::global().counter("analysis.configurations").add(1);
  return Out;
}

} // namespace

Result<VerdictOutcome>
swa::analysis::analyzeVerdictOnly(const cfg::Config &Config,
                                  const nsa::SimOptions &SimOptions) {
  return analyzeVerdictOnly(Config, SimOptions, nullptr);
}

Result<VerdictOutcome>
swa::analysis::analyzeVerdictOnly(const cfg::Config &Config,
                                  const nsa::SimOptions &SimOptions,
                                  ModelArena *Arena) {
  if (Arena) {
    cfg::Fingerprint Shape = cfg::fingerprintShape(Config);
    if (ModelArena::Slot *S = Arena->find(Shape)) {
      // On any rebind failure (invalid config, shape-fingerprint
      // collision) fall through to a fresh build, which reproduces the
      // plain overload's behavior — including its error — exactly.
      if (!core::rebindWindows(S->Model, S->Rebinder, Config))
        return runVerdictOn(S->Model, *S->Sim, Config, SimOptions);
    }
  }

  Result<core::BuiltModel> Model =
      core::buildModel(Config, /*PublishMetrics=*/Arena == nullptr,
                       Arena ? Arena->sharedBytecode() : nullptr);
  if (!Model.ok())
    return Model.takeError();

  // Seed the arena only with models the rebinder can retarget and the
  // flags fast path can evaluate; anything else is used once, as the
  // plain overload would.
  if (Arena && Model->IsFailedSlot >= 0) {
    if (ModelArena::Slot *S =
            Arena->emplace(cfg::fingerprintShape(Config), std::move(*Model)))
      return runVerdictOn(S->Model, *S->Sim, Config, SimOptions);
    // emplace declined (foreign model): *Model was consumed, rebuild.
    Result<core::BuiltModel> Fresh =
        core::buildModel(Config, /*PublishMetrics=*/false,
                         Arena->sharedBytecode());
    if (!Fresh.ok())
      return Fresh.takeError();
    nsa::Simulator Sim(*Fresh->Net);
    return runVerdictOn(*Fresh, Sim, Config, SimOptions);
  }

  nsa::Simulator Sim(*Model->Net);
  return runVerdictOn(*Model, Sim, Config, SimOptions);
}

VerdictOutcome swa::analysis::mergeComponentVerdicts(
    const std::vector<ComponentVerdict> &Components, int TotalTasks) {
  VerdictOutcome Out;
  Out.TaskFailed.assign(static_cast<size_t>(TotalTasks), 0);
  Out.Schedulable = true;

  // An undecided component (guard-rail stop) poisons the whole verdict:
  // report that component's StopReason so callers see the same taxonomy a
  // monolithic guarded run produces. Decided components are still summed
  // into ActionCount first, so diagnostics stay meaningful.
  for (const ComponentVerdict &C : Components) {
    Out.ActionCount += C.Verdict.ActionCount;
    if (!C.Verdict.decided()) {
      Out.Stop = C.Verdict.Stop;
      Out.Schedulable = false;
      Out.FailedTasks = 0;
      std::fill(Out.TaskFailed.begin(), Out.TaskFailed.end(), 0);
      Out.FirstMissTime = -1;
      Out.FirstMissTasks.clear();
      return Out;
    }
  }

  bool AnyEarly = false;
  for (const ComponentVerdict &C : Components) {
    const VerdictOutcome &V = C.Verdict;
    if (V.Stop == nsa::StopReason::DeadlineMiss)
      AnyEarly = true;
    for (size_t L = 0; L < V.TaskFailed.size(); ++L) {
      if (!V.TaskFailed[L])
        continue;
      int32_t G = L < C.GidMap.size() ? C.GidMap[L] : -1;
      if (G >= 0 && G < TotalTasks)
        Out.TaskFailed[static_cast<size_t>(G)] = 1;
    }
    if (V.FirstMissTime >= 0 &&
        (Out.FirstMissTime < 0 || V.FirstMissTime < Out.FirstMissTime))
      Out.FirstMissTime = V.FirstMissTime;
  }
  for (const ComponentVerdict &C : Components) {
    if (C.Verdict.FirstMissTime != Out.FirstMissTime ||
        Out.FirstMissTime < 0)
      continue;
    for (int32_t L : C.Verdict.FirstMissTasks) {
      int32_t G =
          L >= 0 && static_cast<size_t>(L) < C.GidMap.size() ? C.GidMap[L] : -1;
      if (G >= 0 && G < TotalTasks)
        Out.FirstMissTasks.push_back(G);
    }
  }
  std::sort(Out.FirstMissTasks.begin(), Out.FirstMissTasks.end());
  Out.FirstMissTasks.erase(
      std::unique(Out.FirstMissTasks.begin(), Out.FirstMissTasks.end()),
      Out.FirstMissTasks.end());
  for (char F : Out.TaskFailed)
    Out.FailedTasks += F ? 1 : 0;
  Out.Schedulable = Out.FailedTasks == 0 && Out.FirstMissTime < 0;
  Out.Stop = AnyEarly ? nsa::StopReason::DeadlineMiss
                      : nsa::StopReason::Completed;
  return Out;
}
