//===- analysis/Analyzer.cpp - One-call schedulability analysis ------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"

#include "obs/Metrics.h"
#include "obs/Timer.h"

using namespace swa;
using namespace swa::analysis;

bool AnalyzeOutcome::failureFlagsConsistent() const {
  if (Model.IsFailedSlot < 0)
    return true;
  int NT = static_cast<int>(Model.TaskAutomaton.size());
  bool AnyFailed = false;
  for (int G = 0; G < NT; ++G)
    if (Sim.Final.Store[static_cast<size_t>(Model.IsFailedSlot + G)] != 0)
      AnyFailed = true;
  // A job can also miss by never completing without tripping is_failed
  // only if the horizon cut it off; within a full hyperperiod the deadline
  // edges guarantee agreement.
  return AnyFailed == !Analysis.Schedulable;
}

Result<AnalyzeOutcome>
swa::analysis::analyzeConfiguration(const cfg::Config &Config,
                                    const nsa::SimOptions &SimOptions) {
  Result<core::BuiltModel> Model = core::buildModel(Config);
  if (!Model.ok())
    return Model.takeError();

  AnalyzeOutcome Out;
  Out.Model = std::move(*Model);

  nsa::Simulator Sim(*Out.Model.Net);
  Out.Sim = Sim.run(SimOptions);
  if (!Out.Sim.ok())
    return Error::failure("simulation failed: " + Out.Sim.Error);

  {
    obs::ScopedTimer Timer("analyze");
    {
      obs::ScopedTimer MapTimer("map_trace");
      Out.Trace = core::mapTrace(Out.Model, Out.Sim.Events);
    }
    Out.Analysis = analyzeTrace(Config, Out.Trace);
  }
  if (obs::enabled())
    obs::Registry::global().counter("analysis.configurations").add(1);
  return Out;
}
