//===- analysis/Stats.h - Utilization and load statistics -------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Derived statistics over a configuration and its analyzed trace: demand
/// vs window supply per partition, observed busy time per core, response
/// time distributions per task, and data-flow (sender-finish to
/// receiver-finish) latencies per message. Used by reports, examples and
/// the test suite's sanity cross-checks (e.g. observed core busy time
/// equals the summed per-task demand of completed jobs).
///
//===----------------------------------------------------------------------===//

#ifndef SWA_ANALYSIS_STATS_H
#define SWA_ANALYSIS_STATS_H

#include "analysis/Schedulability.h"

#include <string>
#include <vector>

namespace swa {
namespace analysis {

struct PartitionStats {
  int Partition = -1;
  double Demand = 0;      ///< Sum of C/T over the partition's tasks.
  double WindowShare = 0; ///< Window time / hyperperiod.
  int64_t BusyTicks = 0;  ///< Observed execution ticks in the trace.
};

struct CoreStats {
  int Core = -1;
  double Demand = 0;     ///< Sum over hosted partitions.
  int64_t BusyTicks = 0; ///< Observed execution ticks on the core.
  double BusyShare = 0;  ///< BusyTicks / hyperperiod.
};

struct TaskResponseStats {
  int TaskGid = -1;
  int64_t Best = -1;  ///< Minimum response over completed jobs.
  int64_t Worst = -1; ///< Maximum response.
  double Mean = 0;    ///< Over completed jobs.
  int64_t Completed = 0;
  int64_t Missed = 0;
};

struct TraceStats {
  std::vector<PartitionStats> Partitions;
  std::vector<CoreStats> Cores;
  std::vector<TaskResponseStats> Tasks;
};

/// Computes all statistics for one analyzed run.
TraceStats computeStats(const cfg::Config &Config,
                        const AnalysisResult &Result);

/// Renders the statistics as a text table block.
std::string renderStats(const cfg::Config &Config, const TraceStats &S);

/// Exports the per-job table as CSV
/// (task,job,release,ready,finish,exec,completed,intervals).
std::string jobsToCsv(const cfg::Config &Config,
                      const AnalysisResult &Result);

} // namespace analysis
} // namespace swa

#endif // SWA_ANALYSIS_STATS_H
