//===- analysis/ModelArena.h - Shape-keyed NSA instance reuse ---*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An arena of built NSA instances keyed by cfg::fingerprintShape, the
/// third layer of the incremental config search. Local-search mutations
/// mostly move window positions (boost resampling) and only occasionally
/// rebind a partition; window positions are the one part of a config the
/// compiled network reads as *data* (core::WindowRebinder), so a
/// same-shape candidate reuses a previously built model — Algorithm 1,
/// network validation and bytecode compilation all drop out of the
/// per-candidate cost, leaving three vector assignments per core plus the
/// simulator's own reset.
///
/// Reuse safety: nsa::Simulator::run() re-derives its entire state from
/// the network on every call (it resets first — the NsaTest reuse
/// contract), so patching the window tables between runs is
/// indistinguishable from building a fresh model. The arena keeps the
/// Simulator next to the model because the simulator holds a reference to
/// the network; slots live in a std::list so neither moves.
///
/// Determinism: whether a slot exists when a candidate arrives depends on
/// eviction order and which worker's arena is asked — a timing fact under
/// parallel search. Nothing about the arena may therefore leak into
/// SearchResult or the merged obs counters: arena builds pass
/// PublishMetrics=false to core::buildModel, and the arena exposes no
/// published statistics. The *verdict* is unaffected either way.
///
/// Not thread-safe: one arena per worker (the search keeps a pool and
/// leases one arena per work item).
///
//===----------------------------------------------------------------------===//

#ifndef SWA_ANALYSIS_MODELARENA_H
#define SWA_ANALYSIS_MODELARENA_H

#include "config/Fingerprint.h"
#include "core/InstanceBuilder.h"
#include "nsa/Simulator.h"

#include <list>
#include <memory>

namespace swa {
namespace analysis {

class ModelArena {
public:
  struct Slot {
    cfg::Fingerprint Shape;
    core::BuiltModel Model;
    core::WindowRebinder Rebinder;
    std::unique_ptr<nsa::Simulator> Sim;
    uint64_t LastUse = 0;
  };

  /// \p Capacity bounds the number of cached models; least-recently-used
  /// slots are evicted. Distinct shapes in one search are few (the base
  /// shape plus one per rebind target), so a small arena captures them.
  explicit ModelArena(size_t Capacity = 16) : Capacity(Capacity) {}

  ModelArena(const ModelArena &) = delete;
  ModelArena &operator=(const ModelArena &) = delete;

  /// Returns the slot for \p Shape (refreshing its LRU stamp), or null.
  Slot *find(const cfg::Fingerprint &Shape);

  /// Takes ownership of \p Model under key \p Shape, builds its rebind
  /// plan and simulator, and returns the slot (evicting the LRU slot at
  /// capacity). Returns null when the model cannot be rebound (no window
  /// slots recorded) — the caller then just uses its own model once.
  Slot *emplace(const cfg::Fingerprint &Shape, core::BuiltModel Model);

  size_t size() const { return Slots.size(); }

  /// Attaches a (possibly shared) compiled-bytecode cache that arena
  /// *misses* consult: a rebuild of a shape any arena in the pool has
  /// compiled before injects the cached bytecode instead of recompiling
  /// (see core::BytecodeCache). The cache is thread-safe and its entries
  /// immutable, so many per-worker arenas may share one. Not owned.
  void setSharedBytecode(core::BytecodeCache *BC) { Bytecode = BC; }
  core::BytecodeCache *sharedBytecode() const { return Bytecode; }

private:
  std::list<Slot> Slots;
  size_t Capacity;
  uint64_t Tick = 0;
  core::BytecodeCache *Bytecode = nullptr;
};

} // namespace analysis
} // namespace swa

#endif // SWA_ANALYSIS_MODELARENA_H
