//===- analysis/Rta.cpp - Analytic response-time analysis -------------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Rta.h"

#include "support/MathExtras.h"

#include <cassert>

using namespace swa;
using namespace swa::analysis;

RtaResult swa::analysis::responseTimeAnalysis(const cfg::Config &Config,
                                              int Partition) {
  const cfg::Partition &P =
      Config.Partitions[static_cast<size_t>(Partition)];
  assert(P.Scheduler == cfg::SchedulerKind::FPPS &&
         "RTA covers FPPS partitions only");

  size_t N = P.Tasks.size();
  RtaResult Res;
  Res.Response.assign(N, -1);
  Res.Schedulable = true;

  for (size_t I = 0; I < N; ++I) {
    const cfg::Task &TI = P.Tasks[I];
    int64_t CI = Config.boundWcet({Partition, static_cast<int>(I)});
    int64_t R = CI;
    for (int Iter = 0; Iter < 1000; ++Iter) {
      int64_t Next = CI;
      for (size_t J = 0; J < N; ++J) {
        if (J == I)
          continue;
        const cfg::Task &TJ = P.Tasks[J];
        if (TJ.Priority <= TI.Priority)
          continue;
        Next += ceilDiv64(R, TJ.Period) *
                Config.boundWcet({Partition, static_cast<int>(J)});
      }
      if (Next == R)
        break;
      R = Next;
      if (R > TI.Deadline)
        break;
    }
    if (R > TI.Deadline) {
      Res.Schedulable = false;
      Res.Response[I] = -1;
    } else {
      Res.Response[I] = R;
    }
  }
  return Res;
}
