//===- analysis/Rta.cpp - Analytic response-time analysis -------------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Rta.h"

#include "support/MathExtras.h"

#include <cassert>

using namespace swa;
using namespace swa::analysis;

RtaResult swa::analysis::responseTimeAnalysis(const cfg::Config &Config,
                                              int Partition) {
  const cfg::Partition &P =
      Config.Partitions[static_cast<size_t>(Partition)];
  assert(P.Scheduler == cfg::SchedulerKind::FPPS &&
         "RTA covers FPPS partitions only");

  size_t N = P.Tasks.size();
  RtaResult Res;
  Res.Response.assign(N, -1);
  Res.Schedulable = true;

  for (size_t I = 0; I < N; ++I) {
    const cfg::Task &TI = P.Tasks[I];
    int64_t CI = Config.boundWcet({Partition, static_cast<int>(I)});
    int64_t R = CI;
    // The fixpoint either converges (Next == R), provably misses
    // (R > deadline), overflows int64 (which can only happen on a path to
    // a miss, since deadlines are int64), or exhausts the iteration cap.
    // Only the first outcome may report the task schedulable: a capped
    // exit used to silently return the last (under-)estimate.
    bool Converged = false;
    bool Overflowed = false;
    for (int Iter = 0; Iter < 1000 && !Overflowed; ++Iter) {
      int64_t Next = CI;
      for (size_t J = 0; J < N; ++J) {
        if (J == I)
          continue;
        const cfg::Task &TJ = P.Tasks[J];
        // Equal-priority tasks interfere: with FIFO tie-breaking a
        // same-priority job admitted first delays this one just like a
        // higher-priority job would, so classical RTA counts ties in
        // hp(i). Skipping them (the old `<=`) under-estimated R.
        if (TJ.Priority < TI.Priority)
          continue;
        int64_t Interference;
        if (mulOverflow64(ceilDiv64(R, TJ.Period),
                          Config.boundWcet({Partition, static_cast<int>(J)}),
                          Interference) ||
            addOverflow64(Next, Interference, Next)) {
          Overflowed = true;
          break;
        }
      }
      if (Overflowed)
        break;
      if (Next == R) {
        Converged = true;
        break;
      }
      R = Next;
      if (R > TI.Deadline)
        break;
    }
    if (!Converged || R > TI.Deadline) {
      Res.Schedulable = false;
      Res.Response[I] = -1;
    } else {
      Res.Response[I] = R;
    }
  }
  return Res;
}
