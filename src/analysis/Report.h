//===- analysis/Report.h - Text reports and Gantt rendering -----*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Human-readable rendering of analysis results: a summary report
/// (verdict, per-task worst response times, utilization) and an ASCII
/// Gantt chart of the execution intervals over the hyperperiod.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_ANALYSIS_REPORT_H
#define SWA_ANALYSIS_REPORT_H

#include "analysis/Schedulability.h"

#include <string>

namespace swa {
namespace analysis {

/// Multi-line summary: verdict, job counts, per-task worst response.
std::string renderReport(const cfg::Config &Config,
                         const AnalysisResult &Result);

/// ASCII Gantt chart: one row per task, one column per \p TicksPerColumn
/// ticks ('#' executing, '.' idle, '!' deadline miss at that job's
/// deadline column).
std::string renderGantt(const cfg::Config &Config,
                        const AnalysisResult &Result,
                        int64_t TicksPerColumn = 1);

} // namespace analysis
} // namespace swa

#endif // SWA_ANALYSIS_REPORT_H
