//===- analysis/Report.cpp - Text reports and Gantt rendering ---------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Report.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace swa;
using namespace swa::analysis;

std::string swa::analysis::renderReport(const cfg::Config &Config,
                                        const AnalysisResult &Result) {
  std::string Out;
  Out += formatString("configuration: %s\n", Config.Name.c_str());
  Out += formatString("hyperperiod:   %lld ticks\n",
                      static_cast<long long>(Config.hyperperiod()));
  Out += formatString("verdict:       %s\n",
                      Result.Schedulable ? "SCHEDULABLE" : "UNSCHEDULABLE");
  Out += formatString("jobs:          %lld total, %lld missed\n",
                      static_cast<long long>(Result.TotalJobs),
                      static_cast<long long>(Result.MissedJobs));
  if (!Result.Schedulable)
    Out += formatString("first miss:    %s\n",
                        Result.FirstViolation.c_str());

  Out += "tasks:\n";
  int NT = Config.numTasks();
  for (int G = 0; G < NT; ++G) {
    cfg::TaskRef Ref = Config.taskRefOf(G);
    const cfg::Task &T = Config.taskOf(Ref);
    const cfg::Partition &P =
        Config.Partitions[static_cast<size_t>(Ref.Partition)];
    int64_t WR = Result.WorstResponse[static_cast<size_t>(G)];
    Out += formatString(
        "  %-20s part=%-12s P=%-6lld D=%-6lld C=%-5lld worst-resp=%s\n",
        T.Name.c_str(), P.Name.c_str(),
        static_cast<long long>(T.Period),
        static_cast<long long>(T.Deadline),
        static_cast<long long>(Config.boundWcet(Ref)),
        WR < 0 ? "MISS" : formatString("%lld",
                                       static_cast<long long>(WR))
                              .c_str());
  }
  return Out;
}

std::string swa::analysis::renderGantt(const cfg::Config &Config,
                                       const AnalysisResult &Result,
                                       int64_t TicksPerColumn) {
  if (TicksPerColumn < 1)
    TicksPerColumn = 1;
  cfg::TimeValue L = Config.hyperperiod();
  int64_t Columns = (L + TicksPerColumn - 1) / TicksPerColumn;
  int NT = Config.numTasks();

  std::vector<std::string> Rows(static_cast<size_t>(NT),
                                std::string(static_cast<size_t>(Columns),
                                            '.'));
  for (const JobStats &J : Result.Jobs) {
    std::string &Row = Rows[static_cast<size_t>(J.TaskGid)];
    for (const ExecInterval &I : J.Intervals) {
      for (int64_t T = I.Start; T < I.End; ++T) {
        int64_t Col = T / TicksPerColumn;
        if (Col >= 0 && Col < Columns)
          Row[static_cast<size_t>(Col)] = '#';
      }
    }
    if (!J.Completed) {
      const cfg::Task &T = Config.taskOf(Config.taskRefOf(J.TaskGid));
      int64_t Col = (J.ReleaseTime + T.Deadline - 1) / TicksPerColumn;
      if (Col >= 0 && Col < Columns)
        Row[static_cast<size_t>(Col)] = '!';
    }
  }

  std::string Out;
  size_t NameWidth = 4;
  for (int G = 0; G < NT; ++G)
    NameWidth = std::max(NameWidth,
                         Config.taskOf(Config.taskRefOf(G)).Name.size());
  for (int G = 0; G < NT; ++G) {
    const cfg::Task &T = Config.taskOf(Config.taskRefOf(G));
    Out += formatString("%-*s |%s|\n", static_cast<int>(NameWidth),
                        T.Name.c_str(),
                        Rows[static_cast<size_t>(G)].c_str());
  }
  Out += formatString("%-*s  0%*lld\n", static_cast<int>(NameWidth), "t=",
                      static_cast<int>(Columns),
                      static_cast<long long>(L));
  return Out;
}
