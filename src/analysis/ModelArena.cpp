//===- analysis/ModelArena.cpp - Shape-keyed NSA instance reuse -----------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "analysis/ModelArena.h"

using namespace swa;
using namespace swa::analysis;

ModelArena::Slot *ModelArena::find(const cfg::Fingerprint &Shape) {
  for (Slot &S : Slots)
    if (S.Shape == Shape) {
      S.LastUse = ++Tick;
      return &S;
    }
  return nullptr;
}

ModelArena::Slot *ModelArena::emplace(const cfg::Fingerprint &Shape,
                                      core::BuiltModel Model) {
  core::WindowRebinder RB = core::makeWindowRebinder(Model);
  if (!RB.Valid)
    return nullptr;
  // Dedupe on insert: a caller that re-emplaces a shape it already holds
  // (races its own find/build sequence, or re-decides after an eviction)
  // must not leave two slots for one key — find() could then return the
  // stale one. Replace the existing slot's contents in place and refresh
  // its LRU stamp instead of appending.
  for (Slot &S : Slots)
    if (S.Shape == Shape) {
      S.Sim.reset(); // references the old network — drop before the model
      S.Model = std::move(Model);
      S.Rebinder = std::move(RB);
      S.Sim = std::make_unique<nsa::Simulator>(*S.Model.Net);
      S.LastUse = ++Tick;
      return &S;
    }
  if (Slots.size() >= Capacity) {
    auto LRU = Slots.begin();
    for (auto It = Slots.begin(); It != Slots.end(); ++It)
      if (It->LastUse < LRU->LastUse)
        LRU = It;
    Slots.erase(LRU);
  }
  Slots.emplace_back();
  Slot &S = Slots.back();
  S.Shape = Shape;
  S.Model = std::move(Model);
  S.Rebinder = std::move(RB);
  // The simulator references the network, so it is created only after
  // the model has reached its final location inside the slot.
  S.Sim = std::make_unique<nsa::Simulator>(*S.Model.Net);
  S.LastUse = ++Tick;
  return &S;
}
