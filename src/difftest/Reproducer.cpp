//===- difftest/Reproducer.cpp - Deterministic failure replay ---------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "difftest/Reproducer.h"

#include "configio/ConfigXml.h"
#include "core/InstanceBuilder.h"
#include "difftest/TraceInvariants.h"
#include "support/StringUtils.h"
#include "xml/Xml.h"

using namespace swa;
using namespace swa::difftest;

namespace {

Result<OraclePair> pairFromName(const std::string &Name) {
  for (OraclePair P :
       {OraclePair::VmVsInterpreter, OraclePair::SimVsRta,
        OraclePair::SimVsMc, OraclePair::TraceInvariants,
        OraclePair::XmlRoundTrip})
    if (Name == oraclePairName(P))
      return P;
  return Error::failure("unknown oracle pair '" + Name + "'");
}

Result<nsa::FaultPlan::Kind> faultKindFromName(const std::string &Name) {
  for (nsa::FaultPlan::Kind K :
       {nsa::FaultPlan::Kind::FlipVariable, nsa::FaultPlan::Kind::SkipSync,
        nsa::FaultPlan::Kind::SkewClock})
    if (Name == nsa::faultKindName(K))
      return K;
  return Error::failure("unknown fault kind '" + Name + "'");
}

Result<int64_t> intAttr(const xml::Node &N, const char *Name) {
  const std::string *V = N.attr(Name);
  if (!V)
    return Error::failure(formatString("<%s> is missing attribute '%s'",
                                       N.Tag.c_str(), Name));
  int64_t Out;
  if (!parseInt64(*V, Out))
    return Error::failure(formatString(
        "<%s> attribute '%s' is not an integer: '%s'", N.Tag.c_str(), Name,
        V->c_str()));
  return Out;
}

} // namespace

std::string swa::difftest::writeReproducerXml(const Reproducer &R) {
  xml::Node Root;
  Root.Tag = "reproducer";
  Root.setAttr("seed", formatString("%llu",
                                    static_cast<unsigned long long>(
                                        R.Seed)));
  Root.setAttr("pair", oraclePairName(R.Pair));
  Root.setAttr("expected", R.Expected);
  Root.setAttr("actual", R.Actual);
  if (!R.Detail.empty())
    Root.addChild("detail")->Text = R.Detail;
  Root.Children.push_back(configio::configToXmlNode(R.Config));
  if (R.HasFault) {
    xml::Node *F = Root.addChild("fault");
    F->setAttr("kind", nsa::faultKindName(R.Fault.FaultKind));
    F->setAttr("at", formatString("%llu",
                                  static_cast<unsigned long long>(
                                      R.Fault.AtAction)));
    F->setAttr("index", formatString("%d", R.Fault.Index));
    F->setAttr("delta", formatString("%lld",
                                     static_cast<long long>(
                                         R.Fault.Delta)));
  }
  return xml::write(Root);
}

Result<Reproducer>
swa::difftest::parseReproducerXml(std::string_view Source) {
  Result<xml::NodePtr> Doc = xml::parse(Source);
  if (!Doc.ok())
    return Doc.takeError();
  const xml::Node &Root = **Doc;
  if (Root.Tag != "reproducer")
    return Error::failure("expected a <reproducer> root element, found <" +
                          Root.Tag + ">");

  Reproducer R;
  // Seeds are uint64 and routinely exceed the int64 range; parse unsigned.
  const std::string *SeedStr = Root.attr("seed");
  if (!SeedStr)
    return Error::failure("<reproducer> is missing attribute 'seed'");
  if (!parseUInt64(*SeedStr, R.Seed))
    return Error::failure(formatString(
        "<reproducer> attribute 'seed' is not an unsigned integer: '%s'",
        SeedStr->c_str()));

  Result<OraclePair> Pair = pairFromName(Root.attrOr("pair", ""));
  if (!Pair.ok())
    return Pair.takeError();
  R.Pair = *Pair;
  R.Expected = Root.attrOr("expected", "");
  R.Actual = Root.attrOr("actual", "");
  if (const xml::Node *D = Root.child("detail"))
    R.Detail = D->Text;

  const xml::Node *Cfg = Root.child("configuration");
  if (!Cfg)
    return Error::failure("reproducer has no embedded <configuration>");
  Result<cfg::Config> C = configio::configFromXmlNode(*Cfg);
  if (!C.ok())
    return C.takeError();
  R.Config = C.takeValue();

  if (const xml::Node *F = Root.child("fault")) {
    R.HasFault = true;
    Result<nsa::FaultPlan::Kind> Kind =
        faultKindFromName(F->attrOr("kind", ""));
    if (!Kind.ok())
      return Kind.takeError();
    R.Fault.FaultKind = *Kind;
    Result<int64_t> At = intAttr(*F, "at");
    Result<int64_t> Index = intAttr(*F, "index");
    Result<int64_t> Delta = intAttr(*F, "delta");
    if (!At.ok())
      return At.takeError();
    if (!Index.ok())
      return Index.takeError();
    if (!Delta.ok())
      return Delta.takeError();
    R.Fault.AtAction = static_cast<uint64_t>(*At);
    R.Fault.Index = static_cast<int32_t>(*Index);
    R.Fault.Delta = *Delta;
  }
  return R;
}

Result<ReplayOutcome>
swa::difftest::replayReproducer(const Reproducer &R,
                                const OracleOptions &Options) {
  ReplayOutcome Out;

  if (R.HasFault) {
    // Checker self-test replay: inject the recorded fault and report how
    // the run ends. Expected is always "completed" (a clean run);
    // Actual is the stop reason the injected fault provokes.
    Result<core::BuiltModel> Model = core::buildModel(R.Config);
    if (!Model.ok())
      return Model.takeError();
    TraceInvariantChecker Checker(*Model);
    nsa::FaultPlan Fault = R.Fault;
    Fault.Fired = false;
    nsa::SimOptions SimOpts;
    SimOpts.Checker = &Checker;
    SimOpts.Fault = &Fault;
    nsa::Simulator Sim(*Model->Net);
    nsa::SimResult Res = Sim.run(SimOpts);
    Out.Expected = "completed";
    Out.Actual = nsa::stopReasonName(Res.Stop);
    Out.Detail = Res.Error;
    Out.Reproduced = Out.Expected == R.Expected && Out.Actual == R.Actual;
    return Out;
  }

  // Oracle replay: re-run the full matrix and look for the recorded pair.
  OracleReport Rep = runOracles(R.Config, Options);
  if (!Rep.SkipReason.empty())
    return Error::failure("replay could not run the oracles: " +
                          Rep.SkipReason);
  for (const Discrepancy &D : Rep.Mismatches) {
    if (D.Pair != R.Pair)
      continue;
    Out.Expected = D.Expected;
    Out.Actual = D.Actual;
    Out.Detail = D.Detail;
    Out.Reproduced = D.Expected == R.Expected && D.Actual == R.Actual;
    if (Out.Reproduced)
      return Out;
  }
  if (Out.Expected.empty()) {
    Out.Expected = R.Expected;
    Out.Actual = "(no mismatch on replay)";
    Out.Detail = "the recorded oracle pair reported no discrepancy";
  }
  return Out;
}
