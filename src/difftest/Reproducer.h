//===- difftest/Reproducer.h - Deterministic failure replay -----*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reproducer bundle is a self-contained XML document capturing one
/// oracle discrepancy: the (shrunk) configuration, the campaign seed, the
/// oracle pair, and the expected/actual verdict strings — plus, for
/// checker self-test bundles, the injected FaultPlan. Because every
/// engine in the repo is deterministic, replaying the bundle re-runs the
/// same oracle pair on the embedded configuration and must reproduce the
/// same verdict pair bit-for-bit (examples/replay exits nonzero when it
/// does not).
///
/// \code
/// <reproducer seed="42" pair="sim-vs-rta"
///             expected="..." actual="...">
///   <detail>partition 0 task 1 ('t1')</detail>
///   <configuration ...>...</configuration>
///   <fault kind="flip-variable" at="3" index="2" delta="1"/>  <!-- opt -->
/// </reproducer>
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef SWA_DIFFTEST_REPRODUCER_H
#define SWA_DIFFTEST_REPRODUCER_H

#include "config/Config.h"
#include "difftest/Oracles.h"
#include "nsa/Simulator.h"

#include <string>
#include <string_view>

namespace swa {
namespace difftest {

struct Reproducer {
  cfg::Config Config;
  uint64_t Seed = 0;
  OraclePair Pair = OraclePair::VmVsInterpreter;
  std::string Expected;
  std::string Actual;
  std::string Detail;
  /// Checker self-test bundles replay a deliberate fault injection.
  bool HasFault = false;
  nsa::FaultPlan Fault;
};

/// Serializes the bundle as one XML document.
std::string writeReproducerXml(const Reproducer &R);

/// Parses a bundle (the embedded configuration is validated).
Result<Reproducer> parseReproducerXml(std::string_view Source);

struct ReplayOutcome {
  /// The verdict pair the replay observed.
  std::string Expected;
  std::string Actual;
  /// True when the replay observed the same pair the bundle recorded.
  bool Reproduced = false;
  std::string Detail;
};

/// Re-runs the bundle's oracle pair (or fault injection) on its embedded
/// configuration.
Result<ReplayOutcome> replayReproducer(const Reproducer &R,
                                       const OracleOptions &Options = {});

} // namespace difftest
} // namespace swa

#endif // SWA_DIFFTEST_REPRODUCER_H
