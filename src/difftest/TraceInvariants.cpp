//===- difftest/TraceInvariants.cpp - Online trace-invariant oracle ---------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "difftest/TraceInvariants.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace swa;
using namespace swa::difftest;

TraceInvariantChecker::TraceInvariantChecker(const core::BuiltModel &Model)
    : Model(Model), ShadowEx(*Model.Net) {
  const cfg::Config &C = Model.Config;
  int NT = C.numTasks();
  Tasks.resize(static_cast<size_t>(NT));
  for (int G = 0; G < NT; ++G) {
    cfg::TaskRef Ref = C.taskRefOf(G);
    const cfg::Task &T = C.taskOf(Ref);
    TaskFacts &F = Tasks[static_cast<size_t>(G)];
    F.Period = T.Period;
    F.Deadline = T.Deadline;
    F.Wcet = C.boundWcet(Ref);
    F.Partition = Ref.Partition;
    F.Core = C.Partitions[static_cast<size_t>(Ref.Partition)].Core;
  }
  Hyperperiod = C.hyperperiod();

  MergedWindows.resize(C.Partitions.size());
  for (size_t P = 0; P < C.Partitions.size(); ++P) {
    std::vector<cfg::Window> W = C.Partitions[P].Windows;
    std::sort(W.begin(), W.end(),
              [](const cfg::Window &A, const cfg::Window &B) {
                return A.Start < B.Start;
              });
    std::vector<cfg::Window> &Out = MergedWindows[P];
    for (const cfg::Window &Win : W) {
      if (!Out.empty() && Win.Start <= Out.back().End)
        Out.back().End = std::max(Out.back().End, Win.End);
      else
        Out.push_back(Win);
    }
  }

  ExecutingOnCore.assign(C.Cores.size(), -1);
  OpenStart.assign(static_cast<size_t>(NT), -1);
  ExecAccum.assign(static_cast<size_t>(NT), 0);
}

void TraceInvariantChecker::onRunStart(const nsa::State &Initial) {
  Shadow = Initial;
  LastTime = Initial.Now;
  Counters = Stats();
  std::fill(ExecutingOnCore.begin(), ExecutingOnCore.end(), -1);
  std::fill(OpenStart.begin(), OpenStart.end(), int64_t{-1});
  std::fill(ExecAccum.begin(), ExecAccum.end(), int64_t{0});
}

std::string TraceInvariantChecker::compareShadow(const nsa::State &Post,
                                                 const char *When) {
  if (Shadow == Post)
    return {};
  // Name the first diverging component; the full-state inequality is the
  // actual invariant, the detail is for the human reading the reproducer.
  if (Shadow.Now != Post.Now)
    return formatString("shadow divergence (%s): model time %lld, shadow "
                        "expected %lld",
                        When, static_cast<long long>(Post.Now),
                        static_cast<long long>(Shadow.Now));
  for (size_t I = 0; I < Shadow.Locs.size(); ++I)
    if (Shadow.Locs[I] != Post.Locs[I])
      return formatString("shadow divergence (%s): automaton %zu at "
                          "location %d, shadow expected %d",
                          When, I, Post.Locs[I], Shadow.Locs[I]);
  for (size_t I = 0; I < Shadow.Clocks.size(); ++I)
    if (Shadow.Clocks[I] != Post.Clocks[I])
      return formatString("shadow divergence (%s): clock %zu is %lld, "
                          "shadow expected %lld (stopwatch rule violated)",
                          When, I, static_cast<long long>(Post.Clocks[I]),
                          static_cast<long long>(Shadow.Clocks[I]));
  for (size_t I = 0; I < Shadow.Store.size(); ++I)
    if (Shadow.Store[I] != Post.Store[I])
      return formatString("shadow divergence (%s): store slot %zu is %lld, "
                          "shadow expected %lld",
                          When, I, static_cast<long long>(Post.Store[I]),
                          static_cast<long long>(Shadow.Store[I]));
  return formatString("shadow divergence (%s)", When);
}

std::string TraceInvariantChecker::onExec(int Gid, int64_t Time) {
  const TaskFacts &F = Tasks[static_cast<size_t>(Gid)];
  if (OpenStart[static_cast<size_t>(Gid)] >= 0)
    return formatString("task %d: EX at t=%lld while already executing "
                        "since t=%lld",
                        Gid, static_cast<long long>(Time),
                        static_cast<long long>(
                            OpenStart[static_cast<size_t>(Gid)]));
  if (F.Core >= 0) {
    int &Running = ExecutingOnCore[static_cast<size_t>(F.Core)];
    if (Running >= 0)
      return formatString("core %d: task %d starts executing at t=%lld "
                          "while task %d still runs (mutual exclusion)",
                          F.Core, Gid, static_cast<long long>(Time),
                          Running);
    Running = Gid;
  }
  OpenStart[static_cast<size_t>(Gid)] = Time;
  return {};
}

std::string TraceInvariantChecker::onStopExec(int Gid, int64_t Time,
                                              bool IsFin) {
  const TaskFacts &F = Tasks[static_cast<size_t>(Gid)];
  int64_t Start = OpenStart[static_cast<size_t>(Gid)];
  if (Start >= 0) {
    // Close the open interval: account it and check window containment.
    ExecAccum[static_cast<size_t>(Gid)] += Time - Start;
    if (F.Core >= 0 &&
        ExecutingOnCore[static_cast<size_t>(F.Core)] == Gid)
      ExecutingOnCore[static_cast<size_t>(F.Core)] = -1;
    OpenStart[static_cast<size_t>(Gid)] = -1;
    if (Time > Start && Time <= Hyperperiod) {
      ++Counters.ExecIntervalsChecked;
      const std::vector<cfg::Window> &W =
          MergedWindows[static_cast<size_t>(F.Partition)];
      // The merged window ending at or after the interval start must
      // contain the whole interval.
      auto It = std::upper_bound(
          W.begin(), W.end(), Start,
          [](int64_t T, const cfg::Window &Win) { return T < Win.End; });
      if (It == W.end() || Start < It->Start || Time > It->End)
        return formatString("task %d: execution [%lld, %lld) leaves the "
                            "windows of partition %d",
                            Gid, static_cast<long long>(Start),
                            static_cast<long long>(Time), F.Partition);
    }
  } else if (!IsFin) {
    return formatString("task %d: PR at t=%lld without an open execution",
                        Gid, static_cast<long long>(Time));
  }
  if (!IsFin)
    return {};

  ++Counters.FinsChecked;
  int64_t Done = ExecAccum[static_cast<size_t>(Gid)];
  ExecAccum[static_cast<size_t>(Gid)] = 0;
  if (Done > F.Wcet)
    return formatString("task %d: job finished at t=%lld with %lld ticks "
                        "executed, more than its WCET %lld",
                        Gid, static_cast<long long>(Time),
                        static_cast<long long>(Done),
                        static_cast<long long>(F.Wcet));
  if (Done < F.Wcet) {
    // The model's only short FIN is the deadline abort, which fires
    // exactly at an absolute deadline k*period + deadline.
    int64_t Rel = Time - F.Deadline;
    if (Rel < 0 || Rel % F.Period != 0)
      return formatString("task %d: job finished at t=%lld with only %lld "
                          "of %lld ticks executed, and t is not an "
                          "absolute deadline (no legal abort here)",
                          Gid, static_cast<long long>(Time),
                          static_cast<long long>(Done),
                          static_cast<long long>(F.Wcet));
  }
  return {};
}

std::string TraceInvariantChecker::onStep(const nsa::State &Post,
                                          const nsa::Step &St,
                                          const std::vector<int32_t> &) {
  ++Counters.StepsChecked;

  // Time must not move during an action step.
  if (Post.Now != LastTime)
    return formatString("action step changed model time from %lld to %lld",
                        static_cast<long long>(LastTime),
                        static_cast<long long>(Post.Now));

  // A binary send must have exactly one receiver (a dropped rendezvous
  // partner — the SkipSync fault class — shows up here).
  const nsa::EnabledInst &Init = St.Initiator;
  if (Init.IsSend && !Init.Broadcast && Init.ChanId >= 0 &&
      St.Receivers.size() != 1)
    return formatString("binary synchronization on channel %d with %zu "
                        "receivers (expected exactly 1)",
                        Init.ChanId, St.Receivers.size());

  // Trace-level bookkeeping on the general model's channel families.
  int NT = static_cast<int>(Tasks.size());
  int Chan = Init.ChanId;
  std::string V;
  if (Model.ExecBase >= 0 && Chan >= Model.ExecBase &&
      Chan < Model.ExecBase + NT)
    V = onExec(Chan - Model.ExecBase, Post.Now);
  else if (Model.PreemptBase >= 0 && Chan >= Model.PreemptBase &&
           Chan < Model.PreemptBase + NT)
    V = onStopExec(Chan - Model.PreemptBase, Post.Now, /*IsFin=*/false);
  else if (Model.FinishedBase >= 0 && Chan >= Model.FinishedBase &&
           Chan < Model.FinishedBase +
                      static_cast<int>(Model.SchedulerAutomaton.size())) {
    const sa::Automaton &A =
        *Model.Net->Automata[static_cast<size_t>(St.InitiatorAut)];
    int Gid = static_cast<int>(A.metaOr("gid", -1));
    if (Gid >= 0 && Gid < NT)
      V = onStopExec(Gid, Post.Now, /*IsFin=*/true);
  }
  if (!V.empty())
    return V;

  // Shadow replay: re-apply the very same step to the private state; the
  // engine's post-state must match exactly.
  ShadowEx.applyStep(Shadow, St);
  return compareShadow(Post, "after action");
}

std::string TraceInvariantChecker::onDelay(int64_t From,
                                           const nsa::State &Post) {
  ++Counters.DelaysChecked;
  if (From != LastTime)
    return formatString("delay starts at t=%lld but the previous event "
                        "was at t=%lld",
                        static_cast<long long>(From),
                        static_cast<long long>(LastTime));
  if (Post.Now < From)
    return formatString("time regressed: delay from %lld to %lld",
                        static_cast<long long>(From),
                        static_cast<long long>(Post.Now));
  LastTime = Post.Now;
  ShadowEx.advanceTime(Shadow, Post.Now - From);
  return compareShadow(Post, "after delay");
}

std::string TraceInvariantChecker::onRunEnd(const nsa::State &Final) {
  // Backstop: whatever happened between the last callback and the end of
  // the run, the engine's final state must equal the shadow's.
  return compareShadow(Final, "at run end");
}
