//===- difftest/Oracles.h - Differential oracle pairs -----------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs every applicable pair of the repo's four independent oracles on
/// one configuration and reports disagreements:
///
///  | pair               | compares                            | gate       |
///  |--------------------|-------------------------------------|------------|
///  | vm-vs-interpreter  | sync traces + final state + verdict | always     |
///  | sim-vs-rta         | verdicts + worst response <= bound  | RTA-sound  |
///  |                    |                                     | partitions |
///  | sim-vs-mc          | final-state census vs trace final   | tiny       |
///  |                    |                                     | instances  |
///  | trace-invariants   | online checker inside the run       | always     |
///  | xml-round-trip     | writeXml(parseXml(cfg)) fixed point | always     |
///  | early-exit-vs-full | first-miss early-exit verdict,      | models     |
///  |                    | first-miss instant/task set vs the  | with       |
///  |                    | full run's                          | is_failed  |
///  | decomposed-vs-mono | per-component evaluation + merge vs | decompos-  |
///  |                    | the monolithic verdict, exactly     | able cfgs  |
///  | sensitivity-slack  | WCET slack certificates re-verified | small job  |
///  |                    | by fresh full runs: at the slack    | counts     |
///  |                    | schedulable, past it the verdict    |            |
///  |                    | flips                               |            |
///
/// RTA soundness gate: an FPPS partition alone on its core with one
/// full-hyperperiod window and no messages touching its tasks. Within the
/// gate the bound direction (worst response <= RTA bound, RTA schedulable
/// => simulator schedulable) always holds; verdict *equality* is only
/// asserted when the partition's priorities are distinct (with ties RTA
/// may legitimately over-estimate).
///
//===----------------------------------------------------------------------===//

#ifndef SWA_DIFFTEST_ORACLES_H
#define SWA_DIFFTEST_ORACLES_H

#include "config/Config.h"

#include <cstdint>
#include <string>
#include <vector>

namespace swa {
namespace difftest {

enum class OraclePair {
  VmVsInterpreter,
  SimVsRta,
  SimVsMc,
  TraceInvariants,
  XmlRoundTrip,
  /// A StopOnFirstMiss run must agree with the full simulation on the
  /// verdict, the first-miss instant, the first-miss task set, and its
  /// observed failed tasks must be a subset of the full run's.
  EarlyExitVsFull,
  /// Simulating the message-graph components separately and merging
  /// (analysis::mergeComponentVerdicts) must reproduce the monolithic
  /// verdict and per-task failure flags exactly.
  DecomposedVsMonolithic,
  /// analysis::analyzeSensitivity per-task WCET slack, re-verified by
  /// fresh *full* (no early exit, no cache) verdict runs against the
  /// certificate pair: the largest-passing config must be schedulable
  /// and the smallest-failing config — one tolerance past the reported
  /// slack — must not be. The sensitivity base verdict must also agree
  /// with the primary run's failure flags.
  SensitivitySlack,
};

/// Short stable name ("vm-vs-interpreter", ...).
const char *oraclePairName(OraclePair P);

/// One oracle disagreement: the expected/actual verdict pair plus a
/// human-readable account of what diverged.
struct Discrepancy {
  OraclePair Pair = OraclePair::VmVsInterpreter;
  std::string Expected;
  std::string Actual;
  std::string Detail;
};

struct OracleOptions {
  /// Run the model-checker census pair (subject to the size gates below).
  bool EnableMc = true;
  /// MC census gates: skip instances with more jobs or a longer
  /// hyperperiod (the census is exponential in simultaneous events).
  int64_t McMaxJobs = 12;
  int64_t McMaxHyperperiod = 256;
  uint64_t McMaxStates = 2000000;
  /// Wall-clock guard rail per simulator run; negative = unlimited.
  int64_t SimBudgetMs = -1;
  /// Attach the online TraceInvariantChecker to the primary run.
  bool CheckInvariants = true;
  /// Run the sensitivity-slack pair (subject to the job-count gate: a
  /// slack query costs O(tasks * log(deadline)) simulator runs, so it
  /// stays on the small instances the campaign generates anyway).
  bool EnableSensitivity = true;
  int64_t SensitivityMaxJobs = 512;
};

struct OracleReport {
  /// Oracle pairs actually exercised (gated pairs that were skipped do
  /// not count).
  int PairsRun = 0;
  std::vector<Discrepancy> Mismatches;
  /// Set when the pipeline rejected the configuration or a guard rail
  /// ended a run — "no comparison possible", which is not a mismatch.
  std::string SkipReason;

  bool clean() const { return Mismatches.empty(); }
};

/// Runs all applicable oracle pairs on \p Config (which should validate;
/// invalid configurations yield a SkipReason, never a crash).
OracleReport runOracles(const cfg::Config &Config,
                        const OracleOptions &Options = {});

} // namespace difftest
} // namespace swa

#endif // SWA_DIFFTEST_ORACLES_H
