//===- difftest/Shrink.h - Delta-debugging config shrinker ------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Greedy delta-debugging over configurations: given a predicate that
/// holds on a failing configuration ("the discrepancy reproduces"), the
/// shrinker repeatedly tries structural removals — drop a message, a
/// task, a partition (with TaskRef re-indexing fixups) — and numeric
/// reductions (shrink WCETs toward 1, merge windows, relax deadlines to
/// their periods), keeping each candidate only when it still validates
/// AND the predicate still holds. It loops to a fixpoint, so the result
/// is 1-minimal at element granularity: removing any single task,
/// partition or message no longer reproduces (asserted by the shrinker's
/// own test).
///
//===----------------------------------------------------------------------===//

#ifndef SWA_DIFFTEST_SHRINK_H
#define SWA_DIFFTEST_SHRINK_H

#include "config/Config.h"

#include <functional>

namespace swa {
namespace difftest {

/// True when the discrepancy still reproduces on the candidate.
using DiscrepancyPredicate = std::function<bool(const cfg::Config &)>;

/// Structural helpers, exposed for the 1-minimality test: each returns
/// the configuration with the element removed and all TaskRef indices
/// fixed up (messages touching removed tasks are dropped).
cfg::Config removeTask(const cfg::Config &C, int Partition, int Task);
cfg::Config removePartition(const cfg::Config &C, int Partition);
cfg::Config removeMessage(const cfg::Config &C, int Message);

struct ShrinkStats {
  int CandidatesTried = 0;
  int CandidatesAccepted = 0;
  int Rounds = 0;
};

/// Minimizes \p Seed while \p Reproduces holds. \p Seed itself must
/// satisfy the predicate; the result always does. \p Stats, when
/// non-null, receives the search effort.
cfg::Config shrinkConfig(const cfg::Config &Seed,
                         const DiscrepancyPredicate &Reproduces,
                         ShrinkStats *Stats = nullptr);

} // namespace difftest
} // namespace swa

#endif // SWA_DIFFTEST_SHRINK_H
