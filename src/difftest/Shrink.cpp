//===- difftest/Shrink.cpp - Delta-debugging config shrinker ----------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "difftest/Shrink.h"

#include <algorithm>

using namespace swa;
using namespace swa::difftest;

cfg::Config swa::difftest::removeMessage(const cfg::Config &C, int M) {
  cfg::Config Out = C;
  Out.Messages.erase(Out.Messages.begin() + M);
  return Out;
}

cfg::Config swa::difftest::removeTask(const cfg::Config &C, int P, int T) {
  cfg::Config Out = C;
  cfg::Partition &Part = Out.Partitions[static_cast<size_t>(P)];
  Part.Tasks.erase(Part.Tasks.begin() + T);
  // Drop messages touching the removed task; shift task indices above it.
  std::vector<cfg::Message> Msgs;
  for (cfg::Message M : Out.Messages) {
    auto Touches = [&](const cfg::TaskRef &R) {
      return R.Partition == P && R.Task == T;
    };
    if (Touches(M.Sender) || Touches(M.Receiver))
      continue;
    auto Fix = [&](cfg::TaskRef &R) {
      if (R.Partition == P && R.Task > T)
        --R.Task;
    };
    Fix(M.Sender);
    Fix(M.Receiver);
    Msgs.push_back(M);
  }
  Out.Messages = std::move(Msgs);
  return Out;
}

cfg::Config swa::difftest::removePartition(const cfg::Config &C, int P) {
  cfg::Config Out = C;
  Out.Partitions.erase(Out.Partitions.begin() + P);
  std::vector<cfg::Message> Msgs;
  for (cfg::Message M : Out.Messages) {
    if (M.Sender.Partition == P || M.Receiver.Partition == P)
      continue;
    auto Fix = [&](cfg::TaskRef &R) {
      if (R.Partition > P)
        --R.Partition;
    };
    Fix(M.Sender);
    Fix(M.Receiver);
    Msgs.push_back(M);
  }
  Out.Messages = std::move(Msgs);
  return Out;
}

namespace {

/// Accepts \p Candidate when it still validates and still reproduces.
bool tryCandidate(const cfg::Config &Candidate,
                  const DiscrepancyPredicate &Reproduces,
                  cfg::Config &Current, ShrinkStats &Stats) {
  ++Stats.CandidatesTried;
  if (Candidate.validate(cfg::ValidationPolicy::AllowUnbound))
    return false; // Removal broke validity; keep looking.
  if (!Reproduces(Candidate))
    return false;
  Current = Candidate;
  ++Stats.CandidatesAccepted;
  return true;
}

} // namespace

cfg::Config swa::difftest::shrinkConfig(const cfg::Config &Seed,
                                        const DiscrepancyPredicate &Repro,
                                        ShrinkStats *StatsOut) {
  cfg::Config Current = Seed;
  ShrinkStats Stats;

  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++Stats.Rounds;

    // Structural removals, coarsest first: whole partitions, then
    // messages, then tasks. Iterate back-to-front so accepted removals
    // leave the indices of untried elements intact.
    for (int P = static_cast<int>(Current.Partitions.size()) - 1; P >= 0;
         --P)
      if (tryCandidate(removePartition(Current, P), Repro, Current,
                       Stats))
        Changed = true;
    for (int M = static_cast<int>(Current.Messages.size()) - 1; M >= 0;
         --M)
      if (tryCandidate(removeMessage(Current, M), Repro, Current, Stats))
        Changed = true;
    for (int P = static_cast<int>(Current.Partitions.size()) - 1; P >= 0;
         --P)
      for (int T = static_cast<int>(
               Current.Partitions[static_cast<size_t>(P)].Tasks.size()) -
               1;
           T >= 0; --T)
        if (tryCandidate(removeTask(Current, P, T), Repro, Current,
                         Stats))
          Changed = true;

    // Window thinning: drop one window at a time.
    for (int P = static_cast<int>(Current.Partitions.size()) - 1; P >= 0;
         --P) {
      cfg::Partition &Part = Current.Partitions[static_cast<size_t>(P)];
      for (int W = static_cast<int>(Part.Windows.size()) - 1; W >= 0;
           --W) {
        cfg::Config Cand = Current;
        cfg::Partition &CandPart =
            Cand.Partitions[static_cast<size_t>(P)];
        CandPart.Windows.erase(CandPart.Windows.begin() + W);
        if (tryCandidate(Cand, Repro, Current, Stats))
          Changed = true;
      }
    }

    // Numeric reductions: halve WCETs toward 1, relax deadlines to the
    // period (the least constraining value), halve periods toward 1.
    for (size_t P = 0; P < Current.Partitions.size(); ++P) {
      for (size_t T = 0;
           T < Current.Partitions[P].Tasks.size(); ++T) {
        {
          cfg::Config Cand = Current;
          cfg::Task &Task = Cand.Partitions[P].Tasks[T];
          bool Smaller = false;
          for (cfg::TimeValue &W : Task.Wcet)
            if (W > 1) {
              W = std::max<cfg::TimeValue>(1, W / 2);
              Smaller = true;
            }
          if (Smaller && tryCandidate(Cand, Repro, Current, Stats))
            Changed = true;
        }
        {
          cfg::Config Cand = Current;
          cfg::Task &Task = Cand.Partitions[P].Tasks[T];
          if (Task.Deadline != Task.Period) {
            Task.Deadline = Task.Period;
            if (tryCandidate(Cand, Repro, Current, Stats))
              Changed = true;
          }
        }
        {
          cfg::Config Cand = Current;
          cfg::Task &Task = Cand.Partitions[P].Tasks[T];
          if (Task.Period > 1) {
            Task.Period /= 2;
            Task.Deadline = std::min(Task.Deadline, Task.Period);
            for (cfg::TimeValue &W : Task.Wcet)
              W = std::min(W, Task.Deadline);
            if (tryCandidate(Cand, Repro, Current, Stats))
              Changed = true;
          }
        }
      }
    }
  }

  if (StatsOut)
    *StatsOut = Stats;
  return Current;
}
