//===- difftest/TraceInvariants.h - Online trace-invariant oracle -*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An nsa::RunChecker that validates, online, the semantic invariants the
/// paper's schedulability argument rests on — independently of the engine
/// that produces the run. Two layers:
///
///  * **Shadow replay**: the checker keeps its own copy of the NSA state
///    and re-applies every step / delay through a private nsa::Exec. Any
///    divergence between the engine's post-state and the shadow —
///    a flipped shared variable, a skewed clock, a location that moved
///    without a step — is reported at the next callback. This is what
///    detects the FlipVariable and SkewClock fault classes.
///
///  * **Trace-level invariants** from §2.1: model time never regresses;
///    a binary send always has exactly one receiver (detects SkipSync);
///    at most one task executes per core at a time; execution intervals
///    stay inside the owning partition's windows; and at every FIN the
///    job's accumulated execution equals its WCET (or is short of it only
///    for the model's deadline-abort FIN, which fires exactly at the
///    absolute deadline).
///
/// The checker is a pure observer; with no fault injected it must never
/// trip on a valid configuration (the campaign asserts zero violations
/// over hundreds of runs), and attaching it must not change the trace
/// (byte-identity asserted in tests/DiffTest.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef SWA_DIFFTEST_TRACEINVARIANTS_H
#define SWA_DIFFTEST_TRACEINVARIANTS_H

#include "core/InstanceBuilder.h"
#include "nsa/Simulator.h"

#include <cstdint>
#include <string>
#include <vector>

namespace swa {
namespace difftest {

class TraceInvariantChecker : public nsa::RunChecker {
public:
  /// \p Model must outlive the checker (it keeps references into the
  /// network and the configuration).
  explicit TraceInvariantChecker(const core::BuiltModel &Model);

  void onRunStart(const nsa::State &Initial) override;
  std::string onStep(const nsa::State &Post, const nsa::Step &St,
                     const std::vector<int32_t> &Writes) override;
  std::string onDelay(int64_t From, const nsa::State &Post) override;
  std::string onRunEnd(const nsa::State &Final) override;

  struct Stats {
    uint64_t StepsChecked = 0;
    uint64_t DelaysChecked = 0;
    uint64_t FinsChecked = 0;
    uint64_t ExecIntervalsChecked = 0;
  };
  const Stats &stats() const { return Counters; }

private:
  std::string compareShadow(const nsa::State &Post, const char *When);
  std::string onExec(int Gid, int64_t Time);
  std::string onStopExec(int Gid, int64_t Time, bool IsFin);

  const core::BuiltModel &Model;
  nsa::Exec ShadowEx;
  nsa::State Shadow;
  Stats Counters;

  int64_t LastTime = 0;

  /// Per-task static facts resolved once from the configuration.
  struct TaskFacts {
    int64_t Period = 0;
    int64_t Deadline = 0;
    int64_t Wcet = 0; ///< On the bound core's type.
    int Partition = -1;
    int Core = -1;
  };
  std::vector<TaskFacts> Tasks;

  /// Merged, sorted, non-overlapping window list per partition
  /// (adjacent/overlapping source windows coalesced), so containment of
  /// an execution interval is one binary search instead of a per-tick
  /// walk — essential for near-overflow-hyperperiod configurations.
  std::vector<std::vector<cfg::Window>> MergedWindows;

  /// Gid currently executing on each core; -1 when idle.
  std::vector<int> ExecutingOnCore;
  /// Open execution-interval start per gid; -1 when not executing.
  std::vector<int64_t> OpenStart;
  /// Execution accumulated since the task's last FIN.
  std::vector<int64_t> ExecAccum;

  int64_t Hyperperiod = 0;
};

} // namespace difftest
} // namespace swa

#endif // SWA_DIFFTEST_TRACEINVARIANTS_H
