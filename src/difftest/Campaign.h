//===- difftest/Campaign.h - Seeded differential campaign -------*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The campaign driver: draws adversarial configurations from
/// gen::adversarialConfig under one master seed, pushes each through
/// every applicable oracle pair (difftest/Oracles.h), and fuzzes the XML
/// front end with mutated serializations of the same configurations.
/// Deliberately invalid draws (the zero-WCET mutator) are asserted to be
/// *cleanly rejected* — a structured validate()/buildModel error, never a
/// crash or a verdict.
///
/// The whole campaign is a pure function of its options: same seed, same
/// configurations, same mismatches — which is what makes a recorded
/// mismatch shrinkable and replayable afterwards.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_DIFFTEST_CAMPAIGN_H
#define SWA_DIFFTEST_CAMPAIGN_H

#include "difftest/Oracles.h"

#include <cstdint>
#include <string>
#include <vector>

namespace swa {
namespace difftest {

struct CampaignOptions {
  uint64_t Seed = 1;
  int NumConfigs = 200;
  /// Oracle gates and guard rails, applied to every configuration.
  OracleOptions Oracle;
  /// Mutated serializations fed to the XML parser per configuration.
  int XmlFuzzPerConfig = 4;
};

/// One recorded mismatch, with enough context to shrink and replay it.
struct CampaignMismatch {
  int ConfigIndex = -1;
  uint64_t ConfigSeed = 0;
  Discrepancy Finding;
  /// The offending configuration, serialized.
  std::string ConfigXml;
};

struct CampaignResult {
  int ConfigsRun = 0;
  /// Invalid draws (e.g. zero-WCET mutants) that were cleanly rejected.
  int RejectedConfigs = 0;
  /// Total oracle pairs exercised across all configurations.
  int OraclePairsRun = 0;
  /// Configurations skipped by guard rails (budget) — not mismatches.
  int SkippedConfigs = 0;
  int XmlDocsFuzzed = 0;
  std::vector<CampaignMismatch> Mismatches;

  bool clean() const { return Mismatches.empty(); }
};

/// Runs the campaign. Deterministic in \p Options.
CampaignResult runCampaign(const CampaignOptions &Options);

/// Derives the per-configuration seed the campaign uses for draw \p Index
/// (exposed so a mismatch can be re-drawn in isolation).
uint64_t campaignConfigSeed(uint64_t MasterSeed, int Index);

} // namespace difftest
} // namespace swa

#endif // SWA_DIFFTEST_CAMPAIGN_H
