//===- difftest/Oracles.cpp - Differential oracle pairs ---------------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "difftest/Oracles.h"

#include "analysis/Analyzer.h"
#include "analysis/Rta.h"
#include "analysis/Schedulability.h"
#include "analysis/Sensitivity.h"
#include "config/Decompose.h"
#include "configio/ConfigXml.h"
#include "core/SystemTrace.h"
#include "difftest/TraceInvariants.h"
#include "mc/ModelChecker.h"
#include "obs/Span.h"
#include "sa/Compile.h"
#include "support/StringUtils.h"

#include <set>

using namespace swa;
using namespace swa::difftest;

const char *swa::difftest::oraclePairName(OraclePair P) {
  switch (P) {
  case OraclePair::VmVsInterpreter:
    return "vm-vs-interpreter";
  case OraclePair::SimVsRta:
    return "sim-vs-rta";
  case OraclePair::SimVsMc:
    return "sim-vs-mc";
  case OraclePair::TraceInvariants:
    return "trace-invariants";
  case OraclePair::XmlRoundTrip:
    return "xml-round-trip";
  case OraclePair::EarlyExitVsFull:
    return "early-exit-vs-full";
  case OraclePair::DecomposedVsMonolithic:
    return "decomposed-vs-monolithic";
  case OraclePair::SensitivitySlack:
    return "sensitivity-slack";
  }
  return "<bad>";
}

namespace {

/// True when RTA's preconditions hold for partition \p P of \p C: FPPS,
/// alone on its core, one window spanning the whole hyperperiod, and no
/// messages touching its tasks.
bool rtaApplies(const cfg::Config &C, int P) {
  const cfg::Partition &Part = C.Partitions[static_cast<size_t>(P)];
  if (Part.Scheduler != cfg::SchedulerKind::FPPS || Part.Core < 0)
    return false;
  if (Part.Windows.size() != 1 || Part.Windows[0].Start != 0 ||
      Part.Windows[0].End != C.hyperperiod())
    return false;
  for (size_t Q = 0; Q < C.Partitions.size(); ++Q)
    if (Q != static_cast<size_t>(P) &&
        C.Partitions[Q].Core == Part.Core)
      return false;
  for (const cfg::Message &M : C.Messages)
    if (M.Sender.Partition == P || M.Receiver.Partition == P)
      return false;
  return true;
}

bool distinctPriorities(const cfg::Partition &Part) {
  std::set<int> Seen;
  for (const cfg::Task &T : Part.Tasks)
    if (!Seen.insert(T.Priority).second)
      return false;
  return true;
}

} // namespace

OracleReport swa::difftest::runOracles(const cfg::Config &Config,
                                       const OracleOptions &Options) {
  OracleReport Rep;
  auto Mismatch = [&](OraclePair Pair, std::string Expected,
                      std::string Actual, std::string Detail) {
    Rep.Mismatches.push_back({Pair, std::move(Expected), std::move(Actual),
                              std::move(Detail)});
  };

  // --- Primary pipeline: build, simulate with the online checker. ------
  Result<core::BuiltModel> Model = core::buildModel(Config);
  if (!Model.ok()) {
    Rep.SkipReason = "rejected: " + Model.error().message();
    return Rep;
  }

  TraceInvariantChecker Checker(*Model);
  const int NT = static_cast<int>(Model->TaskAutomaton.size());
  nsa::SimOptions SimOpts;
  SimOpts.WallClockBudgetMs = Options.SimBudgetMs;
  if (Options.CheckInvariants)
    SimOpts.Checker = &Checker;
  // Watch the failure flags so the full run reports its first-miss
  // instant/task set — the reference the early-exit and decomposition
  // pairs compare against. Watching never perturbs the run.
  if (Model->IsFailedSlot >= 0) {
    SimOpts.FailSlotBase = Model->IsFailedSlot;
    SimOpts.FailSlotCount = NT;
  }
  nsa::Simulator Sim(*Model->Net);
  nsa::SimResult Primary = [&] {
    obs::Span VmSpan("vm.run", "difftest");
    return Sim.run(SimOpts);
  }();
  if (Options.CheckInvariants)
    ++Rep.PairsRun;

  if (Primary.Stop == nsa::StopReason::InvariantViolation) {
    Mismatch(OraclePair::TraceInvariants, "invariants hold",
             "invariant violated", Primary.Error);
    return Rep; // The run is truncated; downstream comparisons would lie.
  }
  if (Primary.Stop == nsa::StopReason::BudgetExceeded ||
      Primary.Stop == nsa::StopReason::Cancelled) {
    Rep.SkipReason = "guard rail: " + Primary.Error;
    return Rep;
  }
  if (!Primary.ok()) {
    Mismatch(OraclePair::TraceInvariants, "run completes",
             formatString("stopped: %s",
                          nsa::stopReasonName(Primary.Stop)),
             Primary.Error);
    return Rep;
  }

  core::SystemTrace SysTrace = core::mapTrace(*Model, Primary.Events);
  analysis::AnalysisResult Analysis =
      analysis::analyzeTrace(Config, SysTrace);

  // --- VM vs tree interpreter. -----------------------------------------
  {
    ++Rep.PairsRun;
    Result<core::BuiltModel> Stripped = core::buildModel(Config);
    if (Stripped.ok()) {
      sa::stripBytecode(*Stripped->Net);
      nsa::SimOptions NoVm;
      NoVm.WallClockBudgetMs = Options.SimBudgetMs;
      nsa::Simulator Sim2(*Stripped->Net);
      nsa::SimResult Interp = [&] {
        obs::Span InterpSpan("interp.run", "difftest");
        return Sim2.run(NoVm);
      }();
      if (!Interp.ok()) {
        Mismatch(OraclePair::VmVsInterpreter, "run completes",
                 formatString("interpreter run stopped: %s",
                              nsa::stopReasonName(Interp.Stop)),
                 Interp.Error);
      } else {
        if (!nsa::syncTracesEqual(Primary.Events, Interp.Events))
          Mismatch(OraclePair::VmVsInterpreter, "identical sync traces",
                   "traces differ",
                   formatString("VM run: %llu actions, interpreter run: "
                                "%llu actions",
                                static_cast<unsigned long long>(
                                    Primary.ActionCount),
                                static_cast<unsigned long long>(
                                    Interp.ActionCount)));
        if (!(Primary.Final == Interp.Final))
          Mismatch(OraclePair::VmVsInterpreter, "identical final states",
                   "final states differ", "VM and tree-interpreter runs "
                   "end in different NSA states");
      }
    }
  }

  // --- Simulator verdict vs analytic RTA bound. ------------------------
  for (size_t P = 0; P < Config.Partitions.size(); ++P) {
    if (!rtaApplies(Config, static_cast<int>(P)))
      continue;
    ++Rep.PairsRun;
    analysis::RtaResult Rta =
        analysis::responseTimeAnalysis(Config, static_cast<int>(P));
    const cfg::Partition &Part = Config.Partitions[P];
    bool SimPartSchedulable = true;
    for (size_t T = 0; T < Part.Tasks.size(); ++T) {
      int Gid = Config.globalTaskId(
          {static_cast<int>(P), static_cast<int>(T)});
      int64_t Worst = Analysis.WorstResponse[static_cast<size_t>(Gid)];
      if (Worst < 0)
        SimPartSchedulable = false;
      int64_t Bound = Rta.Response[T];
      // Soundness: the observed worst response never exceeds the bound.
      if (Bound >= 0 && Worst >= 0 && Worst > Bound)
        Mismatch(OraclePair::SimVsRta,
                 formatString("response <= RTA bound %lld",
                              static_cast<long long>(Bound)),
                 formatString("worst observed response %lld",
                              static_cast<long long>(Worst)),
                 formatString("partition %zu task %zu ('%s')", P, T,
                              Part.Tasks[T].Name.c_str()));
    }
    if (Rta.Schedulable && !SimPartSchedulable)
      Mismatch(OraclePair::SimVsRta, "RTA: schedulable",
               "simulator: job missed",
               formatString("partition %zu ('%s')", P,
                            Part.Name.c_str()));
    // With distinct priorities the critical instant argument is exact on
    // synchronous release, so the verdicts must agree both ways.
    if (distinctPriorities(Part) && !Rta.Schedulable &&
        SimPartSchedulable)
      Mismatch(OraclePair::SimVsRta, "RTA: unschedulable",
               "simulator: all deadlines met",
               formatString("partition %zu ('%s'), distinct priorities",
                            P, Part.Name.c_str()));
  }

  // --- Simulator final state vs model-checker census. ------------------
  Result<int64_t> Jobs = Config.checkedJobCount();
  Result<cfg::TimeValue> L = Config.checkedHyperperiod();
  if (Options.EnableMc && Jobs.ok() && *Jobs <= Options.McMaxJobs &&
      L.ok() && *L <= Options.McMaxHyperperiod) {
    mc::McOptions McOpts;
    McOpts.MaxStates = Options.McMaxStates;
    mc::ModelChecker Mc(*Model->Net);
    mc::McResult Census = Mc.explore(McOpts);
    if (Census.ok() && Census.CompleteRuns > 0) {
      ++Rep.PairsRun;
      if (Census.DistinctFinalStates != 1)
        Mismatch(OraclePair::SimVsMc, "1 distinct final state",
                 formatString("%llu distinct final states",
                              static_cast<unsigned long long>(
                                  Census.DistinctFinalStates)),
                 "trace-determinism theorem violated across "
                 "interleavings");
      else if (Census.FinalStateHash !=
               nsa::StateHash()(Primary.Final))
        Mismatch(OraclePair::SimVsMc,
                 "census final state == simulator final state",
                 "final-state hashes differ",
                 formatString("mc=%llu sim=%llu",
                              static_cast<unsigned long long>(
                                  Census.FinalStateHash),
                              static_cast<unsigned long long>(
                                  nsa::StateHash()(Primary.Final))));
    }
  }

  // --- configio round trip: writeXml(parseXml(x)) is a fixed point. ----
  {
    ++Rep.PairsRun;
    std::string Doc = configio::writeConfigXml(Config);
    Result<cfg::Config> Back = configio::parseConfigXml(Doc);
    if (!Back.ok())
      Mismatch(OraclePair::XmlRoundTrip, "parse succeeds",
               "parse failed", Back.error().message());
    else if (configio::writeConfigXml(*Back) != Doc)
      Mismatch(OraclePair::XmlRoundTrip, "byte-identical document",
               "document changed after round trip",
               "a field was dropped, defaulted or reordered");
  }

  // --- First-miss early exit vs the full run. --------------------------
  // Reference facts come from the primary run's fail-slot watch; the
  // early-exit run stops at the first miss instant and must agree on the
  // verdict, the instant and the instant's task set, and must never
  // report a task the full run did not fail.
  std::vector<char> FullFailed(static_cast<size_t>(NT), 0);
  bool FullAnyFailed = false;
  if (Model->IsFailedSlot >= 0) {
    for (int G = 0; G < NT; ++G)
      if (Primary.Final
              .Store[static_cast<size_t>(Model->IsFailedSlot + G)] != 0) {
        FullFailed[static_cast<size_t>(G)] = 1;
        FullAnyFailed = true;
      }
  }
  if (Model->IsFailedSlot >= 0) {
    ++Rep.PairsRun;
    nsa::SimOptions EarlyOpts;
    EarlyOpts.WallClockBudgetMs = Options.SimBudgetMs;
    EarlyOpts.StopOnFirstMiss = true;
    Result<analysis::VerdictOutcome> EarlyR =
        analysis::analyzeVerdictOnly(Config, EarlyOpts);
    if (!EarlyR.ok()) {
      Mismatch(OraclePair::EarlyExitVsFull, "early-exit run completes",
               "error", EarlyR.error().message());
    } else if (!EarlyR->decided()) {
      --Rep.PairsRun; // Guard rail ended the run: no comparison.
    } else {
      const analysis::VerdictOutcome &E = *EarlyR;
      if (E.Schedulable == FullAnyFailed)
        Mismatch(OraclePair::EarlyExitVsFull,
                 FullAnyFailed ? "unschedulable" : "schedulable",
                 E.Schedulable ? "schedulable" : "unschedulable",
                 "early-exit verdict diverges from the full run");
      if (E.FirstMissTime != Primary.FirstMissTime)
        Mismatch(OraclePair::EarlyExitVsFull,
                 formatString("first miss at t=%lld",
                              static_cast<long long>(Primary.FirstMissTime)),
                 formatString("first miss at t=%lld",
                              static_cast<long long>(E.FirstMissTime)),
                 "first-miss instant diverges");
      if (E.FirstMissTasks != Primary.FirstMissSlots)
        Mismatch(OraclePair::EarlyExitVsFull,
                 formatString("%zu tasks at the first miss instant",
                              Primary.FirstMissSlots.size()),
                 formatString("%zu tasks at the first miss instant",
                              E.FirstMissTasks.size()),
                 "first-miss task set diverges");
      for (size_t G = 0; G < E.TaskFailed.size(); ++G)
        if (E.TaskFailed[G] && !FullFailed[G]) {
          Mismatch(OraclePair::EarlyExitVsFull,
                   "early-exit failures are a subset of the full run's",
                   formatString("task gid %zu failed only under early exit",
                                G),
                   "a truncated run observed a miss the full run did not");
          break;
        }
    }
  }

  // --- Per-component evaluation + merge vs the monolithic run. ---------
  if (Model->IsFailedSlot >= 0) {
    cfg::Decomposition D = cfg::decomposeConfig(Config);
    if (D.Decomposed) {
      ++Rep.PairsRun;
      bool Usable = true;
      std::vector<analysis::ComponentVerdict> Parts;
      for (cfg::Component &C : D.Components) {
        if (Error E = C.Sub.validate()) {
          Mismatch(OraclePair::DecomposedVsMonolithic,
                   "components validate", "component config invalid",
                   E.message());
          Usable = false;
          break;
        }
        nsa::SimOptions SubOpts;
        SubOpts.WallClockBudgetMs = Options.SimBudgetMs;
        SubOpts.Horizon = D.Horizon;
        Result<analysis::VerdictOutcome> R =
            analysis::analyzeVerdictOnly(C.Sub, SubOpts);
        if (!R.ok()) {
          Mismatch(OraclePair::DecomposedVsMonolithic,
                   "component run completes", "error",
                   R.error().message());
          Usable = false;
          break;
        }
        if (!R->decided()) {
          --Rep.PairsRun; // Guard rail: no comparison.
          Usable = false;
          break;
        }
        Parts.push_back({std::move(*R), C.GidMap});
      }
      if (Usable) {
        analysis::VerdictOutcome M =
            analysis::mergeComponentVerdicts(Parts, NT);
        if (M.Schedulable == FullAnyFailed)
          Mismatch(OraclePair::DecomposedVsMonolithic,
                   FullAnyFailed ? "unschedulable" : "schedulable",
                   M.Schedulable ? "schedulable" : "unschedulable",
                   "merged component verdict diverges from the "
                   "monolithic run");
        if (M.TaskFailed != FullFailed)
          Mismatch(OraclePair::DecomposedVsMonolithic,
                   "identical per-task failure flags",
                   "flags differ",
                   formatString("merged %lld failed tasks, monolithic "
                                "run disagrees on at least one gid",
                                static_cast<long long>(M.FailedTasks)));
        if (M.FirstMissTime != Primary.FirstMissTime)
          Mismatch(OraclePair::DecomposedVsMonolithic,
                   formatString("first miss at t=%lld",
                                static_cast<long long>(
                                    Primary.FirstMissTime)),
                   formatString("first miss at t=%lld",
                                static_cast<long long>(M.FirstMissTime)),
                   "first-miss instant diverges");
        if (M.FirstMissTasks != Primary.FirstMissSlots)
          Mismatch(OraclePair::DecomposedVsMonolithic,
                   formatString("%zu tasks at the first miss instant",
                                Primary.FirstMissSlots.size()),
                   formatString("%zu tasks at the first miss instant",
                                M.FirstMissTasks.size()),
                   "first-miss task set diverges");
      }
    }
  }

  // --- WCET slack certificates vs fresh full verdicts. -----------------
  // The sensitivity search runs early-exit probes through a verdict
  // cache; re-verifying its certificate pair with *fresh* full runs (no
  // early exit, no cache, no arena) closes the loop on that whole
  // machinery: at the reported slack the system must be schedulable, one
  // tolerance past it the verdict must flip.
  if (Options.EnableSensitivity && Model->IsFailedSlot >= 0 && Jobs.ok() &&
      *Jobs <= Options.SensitivityMaxJobs) {
    analysis::SensitivityOptions SOpts;
    SOpts.QueryPeriod = false;
    SOpts.QueryOffset = false;
    SOpts.QueryFrontier = false;
    SOpts.ProbeBudgetMs = Options.SimBudgetMs;
    Result<analysis::SensitivityResult> SR =
        analysis::analyzeSensitivity(Config, SOpts);
    if (!SR.ok()) {
      ++Rep.PairsRun;
      Mismatch(OraclePair::SensitivitySlack,
               "sensitivity analysis completes", "error",
               SR.error().message());
    } else if (SR->BaseDecided) {
      ++Rep.PairsRun;
      if (SR->BaseSchedulable == FullAnyFailed)
        Mismatch(OraclePair::SensitivitySlack,
                 FullAnyFailed ? "unschedulable" : "schedulable",
                 SR->BaseSchedulable ? "schedulable" : "unschedulable",
                 "sensitivity base verdict diverges from the primary run");
      auto FreshVerdict =
          [&](const cfg::Config &C) -> Result<analysis::VerdictOutcome> {
        nsa::SimOptions FullOpts;
        FullOpts.WallClockBudgetMs = Options.SimBudgetMs;
        return analysis::analyzeVerdictOnly(C, FullOpts);
      };
      for (const analysis::WcetSlackResult &W : SR->Wcet) {
        if (!W.Decided)
          continue; // Guard rail ended the query: nothing to certify.
        if (W.HasPassing) {
          Result<analysis::VerdictOutcome> V = FreshVerdict(W.LargestPassing);
          if (V.ok() && V->decided() && !V->Schedulable)
            Mismatch(OraclePair::SensitivitySlack,
                     formatString("schedulable at slack %lld",
                                  static_cast<long long>(W.SlackTicks)),
                     "fresh full run: unschedulable",
                     formatString("task gid %d largest-passing certificate",
                                  W.TaskGid));
        }
        if (W.HasFailing) {
          Result<analysis::VerdictOutcome> V = FreshVerdict(W.SmallestFailing);
          if (V.ok() && V->decided() && V->Schedulable)
            Mismatch(OraclePair::SensitivitySlack,
                     formatString("unschedulable past slack %lld",
                                  static_cast<long long>(W.SlackTicks)),
                     "fresh full run: schedulable",
                     formatString("task gid %d smallest-failing certificate",
                                  W.TaskGid));
        }
      }
    }
  }

  return Rep;
}
