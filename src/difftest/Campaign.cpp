//===- difftest/Campaign.cpp - Seeded differential campaign -----------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//

#include "difftest/Campaign.h"

#include "configio/ConfigXml.h"
#include "core/InstanceBuilder.h"
#include "gen/Adversarial.h"
#include "obs/Span.h"
#include "support/Rng.h"
#include "xml/Xml.h"

using namespace swa;
using namespace swa::difftest;

uint64_t swa::difftest::campaignConfigSeed(uint64_t MasterSeed, int Index) {
  // splitmix-style decorrelation so neighbouring indices draw unrelated
  // configurations.
  uint64_t Z = MasterSeed + 0x9e3779b97f4a7c15ULL *
                                (static_cast<uint64_t>(Index) + 1);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

namespace {

/// Feeds the XML parser mutated copies of \p Doc: truncations, byte
/// flips, inserted markup. Success or structured failure are both fine;
/// the parser just must not crash, hang, or recurse without bound (run
/// under sanitizers in CI this is the actual assertion).
int fuzzXmlParser(const std::string &Doc, Rng &R, int Count) {
  int Fed = 0;
  for (int I = 0; I < Count; ++I) {
    std::string Mutated = Doc;
    switch (R.index(4)) {
    case 0: // Truncate at a random point.
      Mutated.resize(R.index(Mutated.size() + 1));
      break;
    case 1: // Flip one byte.
      if (!Mutated.empty())
        Mutated[R.index(Mutated.size())] =
            static_cast<char>(R.uniformInt(1, 255));
      break;
    case 2: // Insert hostile markup.
      Mutated.insert(R.index(Mutated.size() + 1),
                     R.chance(0.5) ? "<x>" : "&#99999999999999999999;");
      break;
    default: // Duplicate a random chunk (unbalances the tree).
      if (!Mutated.empty()) {
        size_t From = R.index(Mutated.size());
        size_t Len = R.index(Mutated.size() - From) + 1;
        Mutated.insert(R.index(Mutated.size() + 1),
                       Mutated.substr(From, Len));
      }
      break;
    }
    // Low limits exercise the bounds code, default limits the grammar.
    if (R.chance(0.3)) {
      xml::ParseLimits Tight;
      Tight.MaxDepth = 8;
      Tight.MaxNameLength = 32;
      Tight.MaxAttrValueLength = 256;
      Tight.MaxTextLength = 1024;
      (void)xml::parse(Mutated, Tight);
    } else {
      (void)xml::parse(Mutated);
    }
    ++Fed;
  }
  return Fed;
}

} // namespace

CampaignResult swa::difftest::runCampaign(const CampaignOptions &Options) {
  CampaignResult Res;
  for (int I = 0; I < Options.NumConfigs; ++I) {
    uint64_t ConfigSeed = campaignConfigSeed(Options.Seed, I);
    obs::Span ConfigSpan("difftest.config", "difftest");
    ConfigSpan.arg("config", I);
    ConfigSpan.arg("seed", static_cast<int64_t>(ConfigSeed));
    Rng R(ConfigSeed);
    cfg::Config C = gen::adversarialConfig(R);

    // XML front-end fuzzing rides along on every draw, valid or not.
    std::string Doc = configio::writeConfigXml(C);
    Res.XmlDocsFuzzed +=
        fuzzXmlParser(Doc, R, Options.XmlFuzzPerConfig);

    if (Error E = C.validate()) {
      // Invalid by design (e.g. the zero-WCET mutator): the whole
      // pipeline must reject it with a structured error. buildModel
      // re-validates; reaching a model here would be a mismatch.
      Result<core::BuiltModel> Model = core::buildModel(C);
      if (Model.ok()) {
        Discrepancy D;
        D.Pair = OraclePair::TraceInvariants;
        D.Expected = "structured rejection: " + E.message();
        D.Actual = "buildModel accepted an invalid configuration";
        D.Detail = E.message();
        Res.Mismatches.push_back({I, ConfigSeed, std::move(D), Doc});
      }
      ++Res.RejectedConfigs;
      continue;
    }

    ++Res.ConfigsRun;
    OracleReport Rep = runOracles(C, Options.Oracle);
    Res.OraclePairsRun += Rep.PairsRun;
    if (!Rep.SkipReason.empty())
      ++Res.SkippedConfigs;
    for (Discrepancy &D : Rep.Mismatches)
      Res.Mismatches.push_back({I, ConfigSeed, std::move(D), Doc});
  }
  return Res;
}
