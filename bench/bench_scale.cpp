//===- bench/bench_scale.cpp - E2: industrial-scale configurations ---------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// Reproduces the §4 scalability claim: "a model instance construction and
// interpretation take about several seconds for configurations of the same
// complexity as industrial avionics systems (about 11 seconds for a
// configuration with 12500 jobs)". The series sweeps the job count up to
// that scale and times the full pipeline.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "gen/Workload.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>

using namespace swa;

static void BM_FullAnalysis(benchmark::State &State) {
  int64_t TargetJobs = State.range(0);
  cfg::Config Config = gen::industrialConfigWithJobs(TargetJobs, /*Seed=*/1);
  int64_t Jobs = Config.jobCount();
  int64_t Missed = 0;
  for (auto _ : State) {
    Result<analysis::AnalyzeOutcome> Out =
        analysis::analyzeConfiguration(Config);
    if (!Out.ok()) {
      State.SkipWithError(Out.error().message().c_str());
      return;
    }
    Missed = Out->Analysis.MissedJobs;
    benchmark::DoNotOptimize(Out->Analysis.TotalJobs);
  }
  State.counters["jobs"] = static_cast<double>(Jobs);
  State.counters["tasks"] = Config.numTasks();
  State.counters["missed"] = static_cast<double>(Missed);
  swa::benchsupport::exportObsCounters(State);
}
BENCHMARK(BM_FullAnalysis)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000)
    ->Arg(4000)
    ->Arg(8000)
    ->Arg(12500)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Simulation only (construction cost excluded), to separate the two
// pipeline phases the paper mentions.
static void BM_SimulationOnly(benchmark::State &State) {
  int64_t TargetJobs = State.range(0);
  cfg::Config Config = gen::industrialConfigWithJobs(TargetJobs, /*Seed=*/1);
  auto Model = core::buildModel(Config);
  if (!Model.ok()) {
    State.SkipWithError(Model.error().message().c_str());
    return;
  }
  uint64_t Actions = 0;
  for (auto _ : State) {
    nsa::Simulator Sim(*Model->Net);
    nsa::SimResult R = Sim.run();
    if (!R.ok()) {
      State.SkipWithError(R.Error.c_str());
      return;
    }
    Actions = R.ActionCount;
    benchmark::DoNotOptimize(R.ActionCount);
  }
  State.counters["jobs"] = static_cast<double>(Config.jobCount());
  State.counters["actions"] = static_cast<double>(Actions);
  swa::benchsupport::exportObsCounters(State);
}
BENCHMARK(BM_SimulationOnly)
    ->Arg(500)
    ->Arg(2000)
    ->Arg(8000)
    ->Arg(12500)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

SWA_BENCH_MAIN();
