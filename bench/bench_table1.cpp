//===- bench/bench_table1.cpp - E1: Table 1 of the paper -------------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 1: analysis execution time for 10..18 jobs, Model
// Checking (exhaustive interleavings) versus the Proposed Approach (a
// single simulated run). Both columns analyze the same NSA: the burst
// family of gen/BurstModel.h, whose jobs contribute one interleavable
// step each — the regime where MC grows ~2x per added job, exactly the
// growth the paper reports (0.57 s -> 215.9 s vs a flat ~0.03 s on their
// 2017 testbed). Absolute times differ; the shape is the target.
//
// A third series explores the *full* IMA component stack (tasks +
// schedulers + core schedulers) for small job counts: its release chains
// interleave several steps per job, so exhaustive checking grows ~10x per
// job — the paper's argument, amplified.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "core/InstanceBuilder.h"
#include "gen/BurstModel.h"
#include "gen/Workload.h"
#include "mc/ModelChecker.h"
#include "nsa/Simulator.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>

using namespace swa;

static void BM_ModelChecking(benchmark::State &State) {
  int Jobs = static_cast<int>(State.range(0));
  auto Net = gen::burstNetwork(Jobs);
  if (!Net.ok()) {
    State.SkipWithError(Net.error().message().c_str());
    return;
  }
  uint64_t States = 0;
  for (auto _ : State) {
    mc::ModelChecker MC(**Net);
    mc::McOptions Opts;
    Opts.CompactVisited = true;
    mc::McResult R = MC.explore(Opts);
    if (!R.ok()) {
      State.SkipWithError(R.Error.c_str());
      return;
    }
    if (R.DistinctFinalStates != 1) {
      State.SkipWithError("determinism violated");
      return;
    }
    States = R.StatesExplored;
    benchmark::DoNotOptimize(R.StatesExplored);
  }
  State.counters["states"] = static_cast<double>(States);
  State.counters["jobs"] = Jobs;
  swa::benchsupport::exportObsCounters(State);
}
BENCHMARK(BM_ModelChecking)
    ->DenseRange(10, 18, 1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

static void BM_ProposedApproach(benchmark::State &State) {
  int Jobs = static_cast<int>(State.range(0));
  bool AllDone = false;
  for (auto _ : State) {
    // The full pipeline the paper times: instance construction plus one
    // run plus the completion check.
    auto Net = gen::burstNetwork(Jobs);
    if (!Net.ok()) {
      State.SkipWithError(Net.error().message().c_str());
      return;
    }
    nsa::Simulator Sim(**Net);
    nsa::SimResult R = Sim.run();
    if (!R.ok()) {
      State.SkipWithError(R.Error.c_str());
      return;
    }
    AllDone = gen::burstAllDone(**Net, R.Final.Store, Jobs);
    benchmark::DoNotOptimize(R.ActionCount);
  }
  State.counters["jobs"] = Jobs;
  State.counters["all_done"] = AllDone ? 1 : 0;
}
BENCHMARK(BM_ProposedApproach)
    ->DenseRange(10, 18, 1)
    ->Unit(benchmark::kMillisecond);

// Exhaustive checking of the full IMA stack: ~10x states per added job,
// so only small points are feasible at all.
static void BM_ModelCheckingFullStack(benchmark::State &State) {
  int Jobs = static_cast<int>(State.range(0));
  auto Model = core::buildModel(gen::table1Config(Jobs));
  if (!Model.ok()) {
    State.SkipWithError(Model.error().message().c_str());
    return;
  }
  uint64_t States = 0;
  for (auto _ : State) {
    mc::ModelChecker MC(*Model->Net);
    mc::McOptions Opts;
    Opts.CompactVisited = true;
    mc::McResult R = MC.explore(Opts);
    if (!R.ok()) {
      State.SkipWithError(R.Error.c_str());
      return;
    }
    States = R.StatesExplored;
  }
  State.counters["states"] = static_cast<double>(States);
  State.counters["jobs"] = Jobs;
  swa::benchsupport::exportObsCounters(State);
}
BENCHMARK(BM_ModelCheckingFullStack)
    ->DenseRange(2, 6, 1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// The proposed approach on the full IMA stack at Table-1 job counts: the
// simulation stays flat where exhaustive checking is already infeasible.
static void BM_ProposedApproachFullStack(benchmark::State &State) {
  int Jobs = static_cast<int>(State.range(0));
  cfg::Config Config = gen::table1Config(Jobs);
  for (auto _ : State) {
    Result<analysis::AnalyzeOutcome> Out =
        analysis::analyzeConfiguration(Config);
    if (!Out.ok()) {
      State.SkipWithError(Out.error().message().c_str());
      return;
    }
    benchmark::DoNotOptimize(Out->Analysis.TotalJobs);
  }
  State.counters["jobs"] = Jobs;
  swa::benchsupport::exportObsCounters(State);
}
BENCHMARK(BM_ProposedApproachFullStack)
    ->DenseRange(10, 18, 1)
    ->Unit(benchmark::kMillisecond);

SWA_BENCH_MAIN();
