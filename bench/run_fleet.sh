#!/usr/bin/env bash
#===- bench/run_fleet.sh - Record the fleet-scaling axis -----------------===#
#
# Part of the swa-sched project.
#
# Runs the fleet-search benchmarks (bench_schedtool BM_SearchFleet: the
# E9 fleet-size axis 1/2/4 with aggregate fleet_candidates_per_sec and
# peer_hit_rate, plus bench_construction's shared-bytecode rows) and
# writes one merged JSON at the repo root:
#
#   $ bench/run_fleet.sh [--record out-file] [build-dir]
#
# Defaults: build-dir = build-release, out-file = BENCH_PR10.json.
# Commit the output; gate later PRs with
#
#   $ bench/compare_bench.py BENCH_PR10.json <current>.json
#
# (fleet_candidates_per_sec is in compare_bench.py's default watched
# set, so a vanished or regressed fleet series fails the gate.)
#
# Same Release-only discipline as run_baseline.sh: the build directory
# must be configured Release (checked via CMakeCache.txt; configured on
# the spot when missing) and a binary self-reporting a debug
# swa_build_type aborts the recording.
#
#===----------------------------------------------------------------------===#
set -euo pipefail

RECORD=""
while :; do
  case "${1:-}" in
  --record)
    if [ -z "${2:-}" ]; then
      echo "error: --record needs an output file name" >&2
      exit 2
    fi
    RECORD="$2"
    shift 2
    ;;
  *)
    break
    ;;
  esac
done
BUILD="${1:-build-release}"
OUT="${RECORD:-BENCH_PR10.json}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BENCHES=(bench_schedtool bench_construction)
FILTERS=('BM_SearchFleet|BM_SearchAtUtilization|BM_SearchNeighborhood'
         'BM_BuildModel')

CACHE="$ROOT/$BUILD/CMakeCache.txt"
if [ ! -f "$CACHE" ]; then
  echo "== configuring $BUILD (Release) ==" >&2
  cmake -S "$ROOT" -B "$ROOT/$BUILD" -DCMAKE_BUILD_TYPE=Release >&2
  CACHE="$ROOT/$BUILD/CMakeCache.txt"
fi
BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$CACHE")"
if [ "$BUILD_TYPE" != "Release" ] && [ "$BUILD_TYPE" != "RelWithDebInfo" ]; then
  echo "error: $BUILD is configured as '${BUILD_TYPE:-<empty>}', not Release." >&2
  echo "A perf baseline from a debug build is not comparable; reconfigure:" >&2
  echo "  cmake -S . -B $BUILD -DCMAKE_BUILD_TYPE=Release" >&2
  exit 1
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

check_context() { # <json> <name>
  local SWA
  SWA="$(jq -r '.context.swa_build_type // empty' "$1")"
  if [ "$SWA" != "release" ]; then
    echo "error: $2 reports swa_build_type=${SWA:-<absent>}; refusing" >&2
    echo "to record a non-release fleet baseline." >&2
    exit 1
  fi
}

for I in "${!BENCHES[@]}"; do
  B="${BENCHES[$I]}"
  BIN="$ROOT/$BUILD/bench/$B"
  if [ ! -x "$BIN" ]; then
    echo "error: $BIN not built (run: cmake --build $BUILD -j)" >&2
    exit 1
  fi
  echo "== $B ==" >&2
  "$BIN" --metrics --benchmark_filter="${FILTERS[$I]}" \
    --benchmark_out="$TMP/$B.json" --benchmark_out_format=json >&2
  check_context "$TMP/$B.json" "$B"
  jq --arg bin "$B" \
    '.benchmarks = [.benchmarks[]? + {binary: $bin}]' \
    "$TMP/$B.json" > "$TMP/$B.tagged.json"
done

TAGGED=()
for B in "${BENCHES[@]}"; do
  TAGGED+=("$TMP/$B.tagged.json")
done
jq -s '{context: .[0].context, benchmarks: (map(.benchmarks) | add)}' \
  "${TAGGED[@]}" > "$ROOT/$OUT"
echo "wrote $ROOT/$OUT" >&2
