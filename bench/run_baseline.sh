#!/usr/bin/env bash
#===- bench/run_baseline.sh - Record a perf baseline ---------------------===#
#
# Part of the swa-sched project.
#
# Runs the perf-relevant benchmark binaries with --metrics (so engine
# counters land next to each wall-time point) and merges the per-binary
# --benchmark_out JSON into one baseline file at the repo root. Each
# benchmark entry is tagged with the binary it came from.
#
#   $ bench/run_baseline.sh [--report] [--record out-file] [build-dir] [out-file]
#
# Defaults: build-dir = build, out-file = BENCH_PR5.json. Commit the output
# so later PRs can compare against a recorded trajectory. --record names
# the output without displacing the build-dir positional — the PR 7
# baseline was recorded with
#   bench/run_baseline.sh --record BENCH_PR7.json build-release
# and compared against its predecessor with
#   bench/compare_bench.py BENCH_PR5.json BENCH_PR7.json
# (compare_bench.py resolves bare baseline names at the repo root).
#
# --report additionally runs examples/config_search and
# examples/sensitivity with --report-out and writes their machine-readable
# obs::RunReports next to the baseline (out-file with .json replaced by
# .report.json and .sensitivity.report.json). compare_bench.py auto-detects
# two such reports and diffs cache hit rates, the stop-reason mix, and
# per-phase nanos. config_search legitimately exits 2 when the seed has no
# schedulable layout (sensitivity: when the base verdict is undecided);
# only a real error (exit 1) aborts the recording.
#
# The build directory must be configured Release: the script checks
# CMakeCache.txt up front (configuring one if the directory is missing)
# and additionally refuses to record a run whose benchmark context says
# the measured code was compiled with assertions on. Two context keys
# matter: our own "swa_build_type" (NDEBUG state of the bench binary and
# the statically linked swa libraries — the code actually measured) and
# google-benchmark's "library_build_type". The latter describes only the
# prebuilt libbenchmark; on Debian that library ships without NDEBUG and
# self-reports "debug" even under -DCMAKE_BUILD_TYPE=Release, so it is a
# hard error only when swa_build_type is absent (pre-PR5 binaries).
# BENCH_PR2.json was recorded from a debug build exactly because nothing
# enforced this; BENCH_PR5.json supersedes it as the trajectory baseline.
#
#===----------------------------------------------------------------------===#
set -euo pipefail

REPORT=0
RECORD=""
while :; do
  case "${1:-}" in
  --report)
    REPORT=1
    shift
    ;;
  --record)
    if [ -z "${2:-}" ]; then
      echo "error: --record needs an output file name" >&2
      exit 2
    fi
    RECORD="$2"
    shift 2
    ;;
  *)
    break
    ;;
  esac
done
BUILD="${1:-build}"
OUT="${2:-${RECORD:-BENCH_PR5.json}}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BENCHES=(bench_table1 bench_engine bench_scale bench_schedtool bench_sensitivity)

CACHE="$ROOT/$BUILD/CMakeCache.txt"
if [ ! -f "$CACHE" ]; then
  echo "== configuring $BUILD (Release) ==" >&2
  cmake -S "$ROOT" -B "$ROOT/$BUILD" -DCMAKE_BUILD_TYPE=Release >&2
  CACHE="$ROOT/$BUILD/CMakeCache.txt"
fi
BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$CACHE")"
if [ "$BUILD_TYPE" != "Release" ] && [ "$BUILD_TYPE" != "RelWithDebInfo" ]; then
  echo "error: $BUILD is configured as '${BUILD_TYPE:-<empty>}', not Release." >&2
  echo "A perf baseline from a debug build is not comparable; reconfigure:" >&2
  echo "  cmake -S . -B $BUILD -DCMAKE_BUILD_TYPE=Release" >&2
  exit 1
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Refuse to record measurements the binary itself marks as debug. A
# missing swa_build_type means the binary predates the key — fall back
# to google-benchmark's library_build_type, which is then the only
# signal available.
check_context() { # <json> <name>
  local SWA LIB
  SWA="$(jq -r '.context.swa_build_type // empty' "$1")"
  LIB="$(jq -r '.context.library_build_type // empty' "$1")"
  if [ -n "$SWA" ]; then
    if [ "$SWA" != "release" ]; then
      echo "error: $2 reports swa_build_type=$SWA; refusing to record." >&2
      exit 1
    fi
  elif [ "$LIB" = "debug" ]; then
    echo "error: $2 reports library_build_type=debug and carries no" >&2
    echo "swa_build_type key; refusing to record a debug baseline." >&2
    exit 1
  fi
}

for B in "${BENCHES[@]}"; do
  BIN="$ROOT/$BUILD/bench/$B"
  if [ ! -x "$BIN" ]; then
    echo "error: $BIN not built (run: cmake --build $BUILD -j)" >&2
    exit 1
  fi
  echo "== $B ==" >&2
  "$BIN" --metrics --benchmark_out="$TMP/$B.json" \
    --benchmark_out_format=json >&2
  check_context "$TMP/$B.json" "$B"
  jq --arg bin "$B" \
    '.benchmarks = [.benchmarks[]? + {binary: $bin}]' \
    "$TMP/$B.json" > "$TMP/$B.tagged.json"
done

TAGGED=()
for B in "${BENCHES[@]}"; do
  TAGGED+=("$TMP/$B.tagged.json")
done
jq -s '{context: .[0].context, benchmarks: (map(.benchmarks) | add)}' \
  "${TAGGED[@]}" > "$ROOT/$OUT"
echo "wrote $ROOT/$OUT" >&2

if [ "$REPORT" = 1 ]; then
  SEARCH="$ROOT/$BUILD/examples/config_search"
  if [ ! -x "$SEARCH" ]; then
    echo "error: $SEARCH not built (run: cmake --build $BUILD -j)" >&2
    exit 1
  fi
  REPORT_OUT="${OUT%.json}.report.json"
  echo "== config_search run report ==" >&2
  # Exit 2 = searched cleanly but found nothing schedulable; the report is
  # still written and still comparable. Only exit 1 is a real failure.
  RC=0
  "$SEARCH" --workers 2 --report-out "$ROOT/$REPORT_OUT" >&2 || RC=$?
  if [ "$RC" != 0 ] && [ "$RC" != 2 ]; then
    echo "error: config_search failed (exit $RC)" >&2
    exit "$RC"
  fi
  jq -e '.swa_run_report == 1' "$ROOT/$REPORT_OUT" > /dev/null
  echo "wrote $ROOT/$REPORT_OUT" >&2

  SENS="$ROOT/$BUILD/examples/sensitivity"
  if [ ! -x "$SENS" ]; then
    echo "error: $SENS not built (run: cmake --build $BUILD -j)" >&2
    exit 1
  fi
  SENS_OUT="${OUT%.json}.sensitivity.report.json"
  echo "== sensitivity run report ==" >&2
  # Exit 2 = the base verdict was undecided (a guard rail fired); the
  # report is still written. Only exit 1 is a real failure.
  RC=0
  "$SENS" --workers 2 --report-out "$ROOT/$SENS_OUT" >&2 || RC=$?
  if [ "$RC" != 0 ] && [ "$RC" != 2 ]; then
    echo "error: sensitivity failed (exit $RC)" >&2
    exit "$RC"
  fi
  jq -e '.swa_run_report == 1' "$ROOT/$SENS_OUT" > /dev/null
  echo "wrote $ROOT/$SENS_OUT" >&2
fi
