#!/usr/bin/env bash
#===- bench/run_baseline.sh - Record a perf baseline ---------------------===#
#
# Part of the swa-sched project.
#
# Runs the perf-relevant benchmark binaries with --metrics (so engine
# counters land next to each wall-time point) and merges the per-binary
# --benchmark_out JSON into one baseline file at the repo root. Each
# benchmark entry is tagged with the binary it came from.
#
#   $ bench/run_baseline.sh [build-dir] [out-file]
#
# Defaults: build-dir = build, out-file = BENCH_PR2.json. Commit the output
# so later PRs can compare against a recorded trajectory.
#
#===----------------------------------------------------------------------===#
set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-BENCH_PR2.json}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BENCHES=(bench_table1 bench_engine bench_scale bench_schedtool)

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

for B in "${BENCHES[@]}"; do
  BIN="$ROOT/$BUILD/bench/$B"
  if [ ! -x "$BIN" ]; then
    echo "error: $BIN not built (run: cmake --build $BUILD -j)" >&2
    exit 1
  fi
  echo "== $B ==" >&2
  "$BIN" --metrics --benchmark_out="$TMP/$B.json" \
    --benchmark_out_format=json >&2
  jq --arg bin "$B" \
    '.benchmarks = [.benchmarks[]? + {binary: $bin}]' \
    "$TMP/$B.json" > "$TMP/$B.tagged.json"
done

TAGGED=()
for B in "${BENCHES[@]}"; do
  TAGGED+=("$TMP/$B.tagged.json")
done
jq -s '{context: .[0].context, benchmarks: (map(.benchmarks) | add)}' \
  "${TAGGED[@]}" > "$ROOT/$OUT"
echo "wrote $ROOT/$OUT" >&2
