//===- bench/bench_observers.cpp - E4: observer verification cost ----------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// Measures the §3 observer verifications: exhaustive exploration of each
// component automaton against its nondeterministic driver environment.
// The series over the harness horizon shows the (expected) exponential
// growth of the verification state space — and why verification is done
// once per component, while per-configuration analysis uses simulation.
//
// Also guards the other observer cost: the obs:: span layer around the
// hot simulation loop. BM_SimSpansGuard runs the same span-wrapped
// simulation with observability off, with spans recording, and with no
// spans at all, and fails the benchmark when the measured overhead
// exceeds the asserted bounds (off must be branch-only, on must stay
// bounded).
//
//===----------------------------------------------------------------------===//

#include "core/InstanceBuilder.h"
#include "gen/Workload.h"
#include "nsa/Simulator.h"
#include "obs/Metrics.h"
#include "obs/Span.h"
#include "verify/Observers.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <string>

using namespace swa;

static void BM_VerifyTsSingleExecution(benchmark::State &State) {
  int Ticks = static_cast<int>(State.range(0));
  uint64_t States = 0;
  bool Holds = false;
  for (auto _ : State) {
    auto Run =
        verify::verifyTsSingleExecution(cfg::SchedulerKind::FPPS, Ticks);
    if (!Run.ok()) {
      State.SkipWithError(Run.error().message().c_str());
      return;
    }
    States = Run->Mc.StatesExplored;
    Holds = Run->Holds;
  }
  State.counters["states"] = static_cast<double>(States);
  State.counters["holds"] = Holds ? 1 : 0;
}
BENCHMARK(BM_VerifyTsSingleExecution)
    ->DenseRange(3, 7, 1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

static void BM_VerifyTaskWcet(benchmark::State &State) {
  int Ticks = static_cast<int>(State.range(0));
  uint64_t States = 0;
  for (auto _ : State) {
    auto Run = verify::verifyTaskWcet(2, Ticks - 2, Ticks);
    if (!Run.ok()) {
      State.SkipWithError(Run.error().message().c_str());
      return;
    }
    States = Run->Mc.StatesExplored;
    if (!Run->Holds) {
      State.SkipWithError("R2 violated!");
      return;
    }
  }
  State.counters["states"] = static_cast<double>(States);
}
BENCHMARK(BM_VerifyTaskWcet)
    ->DenseRange(5, 10, 1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

static void BM_VerifyFullSuite(benchmark::State &State) {
  size_t Requirements = 0;
  for (auto _ : State) {
    auto Suite = verify::verifyComponentLibrary(/*Ticks=*/4);
    if (!Suite.ok()) {
      State.SkipWithError(Suite.error().message().c_str());
      return;
    }
    Requirements = Suite->size();
    for (const verify::VerificationOutcome &O : *Suite)
      if (!O.Holds) {
        State.SkipWithError(("violated: " + O.Id).c_str());
        return;
      }
  }
  State.counters["requirements"] = static_cast<double>(Requirements);
}
BENCHMARK(BM_VerifyFullSuite)->Unit(benchmark::kMillisecond);

//===----------------------------------------------------------------------===//
// Span-layer overhead on the hot simulation loop
//===----------------------------------------------------------------------===//

namespace {

/// The search's per-item instrumentation shape: one span with a few
/// integer args wrapped around each simulation run. The Simulator is
/// reused (run() resets), exactly like the search's hot loop.
uint64_t spanWrappedSimulation(nsa::Simulator &Sim, int Runs) {
  uint64_t Actions = 0;
  for (int I = 0; I < Runs; ++I) {
    obs::Span ItemSpan("simulate.monolithic", "bench");
    ItemSpan.arg("cand", I);
    ItemSpan.arg("comp", -1);
    nsa::SimResult R = Sim.run();
    Actions += R.ActionCount;
    benchmark::DoNotOptimize(R.ok());
  }
  return Actions;
}

/// Best-of-three wall time of \p Runs span-wrapped simulations, so one
/// scheduler hiccup cannot fail the guard.
double bestNanos(nsa::Simulator &Sim, int Runs) {
  double Best = 0;
  for (int Rep = 0; Rep < 3; ++Rep) {
    auto T0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(spanWrappedSimulation(Sim, Runs));
    double Ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - T0)
            .count());
    if (Rep == 0 || Ns < Best)
      Best = Ns;
  }
  return Best;
}

} // namespace

// Asserted overhead bound: with observability off the span objects must
// be branch-only (within noise of a run that never constructs them), and
// with spans recording the per-run cost must stay bounded. Violations
// fail the benchmark, so `bench_observers` doubles as a perf contract.
static void BM_SimSpansGuard(benchmark::State &State) {
  cfg::Config Config = gen::industrialConfigWithJobs(/*Jobs=*/300,
                                                     /*Seed=*/3);
  auto Model = core::buildModel(Config);
  if (!Model.ok()) {
    State.SkipWithError(Model.error().message().c_str());
    return;
  }
  nsa::Simulator Sim(*Model->Net);
  const int Runs = 20;

  obs::setEnabled(false);
  obs::setSpansEnabled(false);
  bestNanos(Sim, Runs); // Warm-up: page in code and model state.
  double OffNs = bestNanos(Sim, Runs);
  obs::setEnabled(true);
  obs::setSpansEnabled(true);
  obs::resetSpans();
  double OnNs = bestNanos(Sim, Runs);
  size_t Spans = obs::spanCount();
  obs::setEnabled(false);
  obs::setSpansEnabled(false);
  obs::resetSpans();

  double OnOverhead = OffNs > 0 ? (OnNs - OffNs) / OffNs : 0;
  // Branch-only check: the disabled path is the baseline itself, so the
  // bound lives on the enabled path. A full span (two clock reads + ring
  // slot + args) costs ~100ns; 20 simulation runs of a 300-job model
  // dwarf that, so anything past 15% is a broken fast path.
  if (OnOverhead > 0.15) {
    State.SkipWithError(
        ("span overhead " + std::to_string(OnOverhead * 100) +
         "% exceeds the asserted 15% bound")
            .c_str());
    return;
  }
  if (Spans < static_cast<size_t>(Runs)) {
    State.SkipWithError("spans-on run recorded no spans");
    return;
  }

  for (auto _ : State)
    benchmark::DoNotOptimize(spanWrappedSimulation(Sim, 1));
  State.counters["spans_on_overhead_pct"] = OnOverhead * 100;
  State.counters["runs_timed"] = Runs;
}
BENCHMARK(BM_SimSpansGuard)->Unit(benchmark::kMillisecond);

SWA_BENCH_MAIN();
