//===- bench/bench_observers.cpp - E4: observer verification cost ----------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// Measures the §3 observer verifications: exhaustive exploration of each
// component automaton against its nondeterministic driver environment.
// The series over the harness horizon shows the (expected) exponential
// growth of the verification state space — and why verification is done
// once per component, while per-configuration analysis uses simulation.
//
//===----------------------------------------------------------------------===//

#include "verify/Observers.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>

using namespace swa;

static void BM_VerifyTsSingleExecution(benchmark::State &State) {
  int Ticks = static_cast<int>(State.range(0));
  uint64_t States = 0;
  bool Holds = false;
  for (auto _ : State) {
    auto Run =
        verify::verifyTsSingleExecution(cfg::SchedulerKind::FPPS, Ticks);
    if (!Run.ok()) {
      State.SkipWithError(Run.error().message().c_str());
      return;
    }
    States = Run->Mc.StatesExplored;
    Holds = Run->Holds;
  }
  State.counters["states"] = static_cast<double>(States);
  State.counters["holds"] = Holds ? 1 : 0;
}
BENCHMARK(BM_VerifyTsSingleExecution)
    ->DenseRange(3, 7, 1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

static void BM_VerifyTaskWcet(benchmark::State &State) {
  int Ticks = static_cast<int>(State.range(0));
  uint64_t States = 0;
  for (auto _ : State) {
    auto Run = verify::verifyTaskWcet(2, Ticks - 2, Ticks);
    if (!Run.ok()) {
      State.SkipWithError(Run.error().message().c_str());
      return;
    }
    States = Run->Mc.StatesExplored;
    if (!Run->Holds) {
      State.SkipWithError("R2 violated!");
      return;
    }
  }
  State.counters["states"] = static_cast<double>(States);
}
BENCHMARK(BM_VerifyTaskWcet)
    ->DenseRange(5, 10, 1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

static void BM_VerifyFullSuite(benchmark::State &State) {
  size_t Requirements = 0;
  for (auto _ : State) {
    auto Suite = verify::verifyComponentLibrary(/*Ticks=*/4);
    if (!Suite.ok()) {
      State.SkipWithError(Suite.error().message().c_str());
      return;
    }
    Requirements = Suite->size();
    for (const verify::VerificationOutcome &O : *Suite)
      if (!O.Holds) {
        State.SkipWithError(("violated: " + O.Id).c_str());
        return;
      }
  }
  State.counters["requirements"] = static_cast<double>(Requirements);
}
BENCHMARK(BM_VerifyFullSuite)->Unit(benchmark::kMillisecond);

SWA_BENCH_MAIN();
