//===- bench/bench_engine.cpp - Engine micro-benchmarks (ablations) --------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// Ablation-style micro-benchmarks for the design choices DESIGN.md calls
// out: the event-driven simulator's dirty tracking (read hints vs
// conservative whole-array read sets) and the USL interpreter's raw
// expression/function evaluation throughput.
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "gen/Workload.h"
#include "models/ModelLibrary.h"
#include "sa/Compile.h"
#include "sa/NetworkBuilder.h"
#include "usl/Binder.h"
#include "usl/Compiler.h"
#include "usl/Interp.h"
#include "usl/Parser.h"
#include "usl/Vm.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>

using namespace swa;

// Interpreter throughput: a scheduler-shaped selection function over a
// 64-task table.
static void BM_InterpPickFunction(benchmark::State &State) {
  usl::Declarations D;
  Error E = usl::parseDeclarations(
      "int is_ready[64]; int prio[64];"
      "int pick() {"
      "  int best = -1; int bp = 0;"
      "  for (int i = 0; i < 64; i++) {"
      "    if (is_ready[i] == 1) {"
      "      if (best == -1 || prio[i] > bp) { best = i; bp = prio[i]; }"
      "    }"
      "  }"
      "  return best;"
      "}",
      D, false);
  if (E) {
    State.SkipWithError(E.message().c_str());
    return;
  }
  usl::BindTarget Target;
  usl::Binder B(Target);
  std::vector<int64_t> Store(128, 0);
  for (size_t I = 0; I < 64; I += 3)
    Store[I] = 1; // is_ready pattern.
  for (size_t I = 64; I < 128; ++I)
    Store[I] = static_cast<int64_t>(I * 37 % 97); // priorities.
  B.mapStore(D.lookup("is_ready"), 0);
  B.mapStore(D.lookup("prio"), 64);
  auto Expr = usl::parseIntExpr("pick()", D);
  if (!Expr.ok()) {
    State.SkipWithError(Expr.error().message().c_str());
    return;
  }
  auto Bound = B.bindExpr(**Expr);
  if (!Bound.ok()) {
    State.SkipWithError(Bound.error().message().c_str());
    return;
  }
  usl::EvalContext Ctx;
  Ctx.Store = &Store;
  Ctx.ConstArrays = &Target.ConstArrays;
  Ctx.FuncTable = &Target.FuncTable;
  for (auto _ : State) {
    Ctx.StepBudget = usl::DefaultStepBudget;
    Ctx.FrameStack.clear();
    benchmark::DoNotOptimize(usl::evalExpr(**Bound, Ctx, 0));
  }
}
BENCHMARK(BM_InterpPickFunction);

// The same pick() through the bytecode VM.
static void BM_VmPickFunction(benchmark::State &State) {
  usl::Declarations D;
  Error E = usl::parseDeclarations(
      "int is_ready[64]; int prio[64];"
      "int pick() {"
      "  int best = -1; int bp = 0;"
      "  for (int i = 0; i < 64; i++) {"
      "    if (is_ready[i] == 1) {"
      "      if (best == -1 || prio[i] > bp) { best = i; bp = prio[i]; }"
      "    }"
      "  }"
      "  return best;"
      "}",
      D, false);
  if (E) {
    State.SkipWithError(E.message().c_str());
    return;
  }
  usl::BindTarget Target;
  usl::Binder B(Target);
  std::vector<int64_t> Store(128, 0);
  for (size_t I = 0; I < 64; I += 3)
    Store[I] = 1;
  for (size_t I = 64; I < 128; ++I)
    Store[I] = static_cast<int64_t>(I * 37 % 97);
  B.mapStore(D.lookup("is_ready"), 0);
  B.mapStore(D.lookup("prio"), 64);
  auto Expr = usl::parseIntExpr("pick()", D);
  auto Bound = B.bindExpr(**Expr);
  if (!Bound.ok()) {
    State.SkipWithError(Bound.error().message().c_str());
    return;
  }
  std::vector<usl::Code> FuncCode;
  for (const usl::FuncDecl *F : Target.FuncTable) {
    auto C = usl::compileFunction(*F);
    if (!C.ok()) {
      State.SkipWithError(C.error().message().c_str());
      return;
    }
    FuncCode.push_back(C.takeValue());
  }
  auto Compiled = usl::compileExpr(**Bound);
  if (!Compiled.ok()) {
    State.SkipWithError(Compiled.error().message().c_str());
    return;
  }
  usl::EvalContext Ctx;
  Ctx.Store = &Store;
  Ctx.ConstArrays = &Target.ConstArrays;
  Ctx.FuncTable = &Target.FuncTable;
  for (auto _ : State) {
    Ctx.StepBudget = usl::DefaultStepBudget;
    Ctx.FrameStack.clear();
    benchmark::DoNotOptimize(usl::runCode(*Compiled, FuncCode, Ctx, 0));
  }
}
BENCHMARK(BM_VmPickFunction);

// Whole-simulation interpreter-vs-VM ablation.
static void BM_SimTreeInterpreter(benchmark::State &State) {
  cfg::Config Config = gen::industrialConfigWithJobs(State.range(0), 1);
  auto Model = core::buildModel(Config);
  if (!Model.ok()) {
    State.SkipWithError(Model.error().message().c_str());
    return;
  }
  sa::stripBytecode(*Model->Net);
  for (auto _ : State) {
    nsa::Simulator Sim(*Model->Net);
    nsa::SimResult R = Sim.run();
    if (!R.ok()) {
      State.SkipWithError(R.Error.c_str());
      return;
    }
    benchmark::DoNotOptimize(R.ActionCount);
  }
  State.counters["jobs"] = static_cast<double>(Config.jobCount());
  swa::benchsupport::exportObsCounters(State);
}
BENCHMARK(BM_SimTreeInterpreter)
    ->Arg(1000)
    ->Arg(3000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Dirty-tracking ablation: the same configuration simulated with the
// library's read hints versus with hints stripped (conservative
// whole-array watch sets wake every scheduler on every task event).
static void BM_SimWithReadHints(benchmark::State &State) {
  cfg::Config Config = gen::industrialConfigWithJobs(State.range(0), 1);
  auto Model = core::buildModel(Config);
  if (!Model.ok()) {
    State.SkipWithError(Model.error().message().c_str());
    return;
  }
  for (auto _ : State) {
    nsa::Simulator Sim(*Model->Net);
    nsa::SimResult R = Sim.run();
    if (!R.ok()) {
      State.SkipWithError(R.Error.c_str());
      return;
    }
    benchmark::DoNotOptimize(R.ActionCount);
  }
  State.counters["jobs"] = static_cast<double>(Config.jobCount());
  swa::benchsupport::exportObsCounters(State);
}
BENCHMARK(BM_SimWithReadHints)
    ->Arg(1000)
    ->Arg(3000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

static void BM_SimConservativeReads(benchmark::State &State) {
  cfg::Config Config = gen::industrialConfigWithJobs(State.range(0), 1);
  auto Model = core::buildModel(Config);
  if (!Model.ok()) {
    State.SkipWithError(Model.error().message().c_str());
    return;
  }
  // Strip the hints: make every automaton watch every slot its template
  // could conservatively read (the whole shared arrays).
  int NT = Config.numTasks();
  int IsReady = Model->Net->slotOf("is_ready");
  int Prio = Model->Net->slotOf("prio");
  int DeadlineAbs = Model->Net->slotOf("deadline_abs");
  for (auto &A : Model->Net->Automata) {
    if (A->TemplateName.find("Scheduler") == std::string::npos)
      continue;
    for (int I = 0; I < NT; ++I) {
      A->StaticReads.push_back(IsReady + I);
      A->StaticReads.push_back(Prio + I);
      A->StaticReads.push_back(DeadlineAbs + I);
    }
  }
  for (auto _ : State) {
    nsa::Simulator Sim(*Model->Net);
    nsa::SimResult R = Sim.run();
    if (!R.ok()) {
      State.SkipWithError(R.Error.c_str());
      return;
    }
    benchmark::DoNotOptimize(R.ActionCount);
  }
  State.counters["jobs"] = static_cast<double>(Config.jobCount());
  swa::benchsupport::exportObsCounters(State);
}
BENCHMARK(BM_SimConservativeReads)
    ->Arg(1000)
    ->Arg(3000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

SWA_BENCH_MAIN();
