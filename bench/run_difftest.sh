#!/usr/bin/env bash
#===- bench/run_difftest.sh - Differential campaign smoke gate -----------===#
#
# Part of the swa-sched project.
#
# Runs the fixed-seed 200-configuration differential campaign (the same
# seed the DiffTest acceptance test pins) and fails when any oracle pair
# mismatches. Part of the tier-1 gate: a clean exit means the simulator,
# the bytecode VM, the tree interpreter, the analytic RTA and the model
# checker still agree on everything the adversarial generator can draw.
#
#   $ bench/run_difftest.sh [build-dir] [configs] [seed]
#
# Defaults: build-dir = build, configs = 200, seed = 20260806. Reproducer
# bundles for any mismatch are written to a temporary directory and
# printed, so a red run is immediately replayable with examples/replay.
#
#===----------------------------------------------------------------------===#
set -euo pipefail

BUILD="${1:-build}"
CONFIGS="${2:-200}"
SEED="${3:-20260806}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BIN="$ROOT/$BUILD/examples/difftest_campaign"

# The campaign is wall-clock bounded per simulation; a debug build can
# push honest configs over the budget and report phantom mismatches.
# Configure Release (matching run_baseline.sh) before trusting a red run.
CACHE="$ROOT/$BUILD/CMakeCache.txt"
if [ ! -f "$CACHE" ]; then
  echo "== configuring $BUILD (Release) ==" >&2
  cmake -S "$ROOT" -B "$ROOT/$BUILD" -DCMAKE_BUILD_TYPE=Release >&2
  CACHE="$ROOT/$BUILD/CMakeCache.txt"
fi
BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$CACHE")"
if [ "$BUILD_TYPE" != "Release" ] && [ "$BUILD_TYPE" != "RelWithDebInfo" ]; then
  echo "error: $BUILD is configured as '${BUILD_TYPE:-<empty>}', not Release." >&2
  echo "Reconfigure: cmake -S . -B $BUILD -DCMAKE_BUILD_TYPE=Release" >&2
  exit 1
fi

if [ ! -x "$BIN" ]; then
  echo "error: $BIN not built (run: cmake --build $BUILD -j)" >&2
  exit 1
fi

OUT="$(mktemp -d)"
STATUS=0
"$BIN" --seed "$SEED" --configs "$CONFIGS" --out "$OUT" || STATUS=$?

if [ "$STATUS" -ne 0 ]; then
  echo "differential campaign FAILED (exit $STATUS); reproducers:" >&2
  ls -l "$OUT"/repro-*.xml >&2 || true
  echo "replay with: $ROOT/$BUILD/examples/replay <bundle>" >&2
  exit "$STATUS"
fi
rm -rf "$OUT"
echo "differential campaign clean (seed=$SEED configs=$CONFIGS)" >&2
