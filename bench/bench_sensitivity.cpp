//===- bench/bench_sensitivity.cpp - E8: parametric sensitivity -----------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// The sensitivity experiment: how expensive is asking "how far from the
// edge" compared to the paper's single binary verdict. Measures probe
// throughput per query family (WCET slack, period intervals, window
// offsets, breakdown frontier), the worker-scaling of the full analysis,
// and the verdict-cache effect when the same analysis is re-run warm —
// the regime an interactive what-if session lives in.
//
//===----------------------------------------------------------------------===//

#include "analysis/Sensitivity.h"
#include "gen/Workload.h"
#include "schedtool/VerdictCache.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>

using namespace swa;

namespace {

// The examples/sensitivity workload: 8 partitions over 4 cores at
// moderate utilization, windows kept — sensitivity only makes sense on a
// schedulable concrete layout.
cfg::Config sensitivityConfig() {
  gen::IndustrialParams Params;
  Params.Modules = 2;
  Params.CoresPerModule = 2;
  Params.PartitionsPerCore = 2;
  Params.CoreUtilization = 0.45;
  Params.Seed = 7;
  return gen::industrialConfig(Params);
}

// Arg 0 of BM_Sensitivity: which query families run.
enum Family { FWcet, FPeriod, FOffset, FFrontier, FAll };

analysis::SensitivityOptions familyOptions(int Family, int Workers) {
  analysis::SensitivityOptions Opts;
  Opts.Workers = Workers;
  if (Family != FAll) {
    Opts.QueryWcet = Family == FWcet;
    Opts.QueryPeriod = Family == FPeriod;
    Opts.QueryOffset = Family == FOffset;
    Opts.QueryFrontier = Family == FFrontier;
  }
  return Opts;
}

} // namespace

// Probe throughput per query family (workers = 1), then worker scaling
// of the full analysis. The result is byte-identical for every worker
// count, so probes_per_sec is a like-for-like comparison.
static void BM_Sensitivity(benchmark::State &State) {
  int Family = static_cast<int>(State.range(0));
  int Workers = static_cast<int>(State.range(1));
  cfg::Config Config = sensitivityConfig();

  int Probes = 0;
  int64_t TotalProbes = 0;
  for (auto _ : State) {
    analysis::SensitivityOptions Opts = familyOptions(Family, Workers);
    Result<analysis::SensitivityResult> Res =
        analysis::analyzeSensitivity(Config, Opts);
    if (!Res.ok()) {
      State.SkipWithError(Res.error().message().c_str());
      return;
    }
    if (!Res->BaseDecided) {
      State.SkipWithError("base verdict undecided");
      return;
    }
    Probes = Res->TotalProbes;
    TotalProbes += Res->TotalProbes;
  }
  State.counters["probes"] = Probes;
  State.counters["workers"] = Workers;
  State.counters["probes_per_sec"] = benchmark::Counter(
      static_cast<double>(TotalProbes), benchmark::Counter::kIsRate);
  swa::benchsupport::exportObsCounters(State);
}
BENCHMARK(BM_Sensitivity)
    ->ArgsProduct({{FWcet, FPeriod, FOffset, FFrontier, FAll}, {1}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);
BENCHMARK(BM_Sensitivity)
    ->ArgsProduct({{FAll}, {2, 4}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

// Ablation: the naive oracle (full-horizon runs, fresh model per probe;
// arg 0 = 0) against the accelerated one (first-miss early exit +
// shape-keyed arena reuse; arg 0 = 1). Probe counts and the
// SensitivityResult are identical — early-exit verdicts are exact and
// the arena fully resets per run — so the wall-time ratio is pure
// engine saving.
static void BM_SensitivityAblation(benchmark::State &State) {
  bool Accelerated = State.range(0) != 0;
  cfg::Config Config = sensitivityConfig();

  int Probes = 0;
  int64_t TotalProbes = 0;
  for (auto _ : State) {
    analysis::SensitivityOptions Opts;
    Opts.UseEarlyExit = Accelerated;
    Opts.UseInstanceReuse = Accelerated;
    Result<analysis::SensitivityResult> Res =
        analysis::analyzeSensitivity(Config, Opts);
    if (!Res.ok()) {
      State.SkipWithError(Res.error().message().c_str());
      return;
    }
    Probes = Res->TotalProbes;
    TotalProbes += Res->TotalProbes;
  }
  State.counters["probes"] = Probes;
  State.counters["accelerated"] = Accelerated ? 1 : 0;
  State.counters["probes_per_sec"] = benchmark::Counter(
      static_cast<double>(TotalProbes), benchmark::Counter::kIsRate);
  swa::benchsupport::exportObsCounters(State);
}
BENCHMARK(BM_SensitivityAblation)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

// The warm-cache regime: a caller-owned VerdictCache shared across
// analyses (arg 0 = 1) against a cold per-call cache (arg 0 = 0). Warm,
// every probe is a fingerprint lookup — the floor for re-asking the same
// what-if after an unrelated edit elsewhere in a session.
static void BM_SensitivityCacheReuse(benchmark::State &State) {
  bool Warm = State.range(0) != 0;
  cfg::Config Config = sensitivityConfig();

  schedtool::VerdictCache Cache;
  analysis::SensitivityOptions Opts;
  Opts.Cache = Warm ? &Cache : nullptr;
  if (Warm) {
    Result<analysis::SensitivityResult> Pre =
        analysis::analyzeSensitivity(Config, Opts);
    if (!Pre.ok()) {
      State.SkipWithError(Pre.error().message().c_str());
      return;
    }
  }

  int Probes = 0;
  int64_t TotalProbes = 0;
  for (auto _ : State) {
    Result<analysis::SensitivityResult> Res =
        analysis::analyzeSensitivity(Config, Opts);
    if (!Res.ok()) {
      State.SkipWithError(Res.error().message().c_str());
      return;
    }
    Probes = Res->TotalProbes;
    TotalProbes += Res->TotalProbes;
  }
  State.counters["probes"] = Probes;
  State.counters["warm"] = Warm ? 1 : 0;
  State.counters["probes_per_sec"] = benchmark::Counter(
      static_cast<double>(TotalProbes), benchmark::Counter::kIsRate);
  swa::benchsupport::exportObsCounters(State);
}
BENCHMARK(BM_SensitivityCacheReuse)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

SWA_BENCH_MAIN();
