#!/usr/bin/env bash
#===- bench/run_crash_matrix.sh - Kill-it-mid-run fault campaign ---------===#
#
# Part of the swa-sched project.
#
# Drives examples/config_search through the full kill-point grid: one
# uninterrupted checkpointed run establishes the reference output and the
# number N of checkpoints it commits, then for every k in 1..N the search
# is re-run with SWA_CRASH_AFTER=commit:k — the process _exit(87)s the
# instant the k-th checkpoint is fully durable — and resumed from the
# surviving snapshot. The resumed run's output (minus the resume/
# checkpoint-traffic lines, which legitimately differ) must be
# byte-identical to the reference, and its exit code must match.
#
#   $ bench/run_crash_matrix.sh [build-dir] [seed]
#
# Defaults: build-dir = build, seed = 7. Prints a PASS/FAIL row per kill
# point and exits nonzero if any grid point fails. Pair with
# `ctest -L durable`, which pins the same contract in-process; this
# script proves it against the real binary, real files, and a real
# process death.
#
#===----------------------------------------------------------------------===#
set -euo pipefail

BUILD="${1:-build}"
SEED="${2:-7}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BIN="$ROOT/$BUILD/examples/config_search"
CRASH_EXIT=87 # support::AtomicFile::kCrashExitCode

if [ ! -x "$BIN" ]; then
  echo "error: $BIN not built (run: cmake --build $BUILD -j)" >&2
  exit 1
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
CKPT="$TMP/search.ckpt"

# The checkpoint-traffic lines are cadence- and resume-dependent; every
# other line of the search output is part of the determinism contract.
strip_traffic() {
  grep -v -e '^resume: ' -e '^checkpoint: ' "$1" || true
}

# Reference run. Exit 0 (found) and 2 (searched cleanly, nothing
# schedulable) are both valid searches; only exit 1 is a failure.
REF_RC=0
"$BIN" "$SEED" --workers 2 --checkpoint "$CKPT" \
  > "$TMP/reference.out" 2> "$TMP/reference.err" || REF_RC=$?
if [ "$REF_RC" != 0 ] && [ "$REF_RC" != 2 ]; then
  cat "$TMP/reference.err" >&2
  echo "error: reference run failed (exit $REF_RC)" >&2
  exit 1
fi
N="$(sed -n 's/^checkpoint: \([0-9]*\) snapshots written.*/\1/p' \
  "$TMP/reference.out")"
if [ -z "$N" ] || [ "$N" -lt 1 ]; then
  echo "error: reference run reported no checkpoint traffic" >&2
  exit 1
fi
strip_traffic "$TMP/reference.out" > "$TMP/reference.clean"
echo "reference: exit $REF_RC, $N checkpoints committed"

FAILURES=0
for K in $(seq 1 "$N"); do
  rm -f "$CKPT" "$CKPT.tmp"

  # Kill the search the moment checkpoint k is durable.
  CRASH_RC=0
  SWA_CRASH_AFTER="commit:$K" "$BIN" "$SEED" --workers 2 \
    --checkpoint "$CKPT" > "$TMP/crash.$K.out" 2>&1 || CRASH_RC=$?
  if [ "$CRASH_RC" != "$CRASH_EXIT" ]; then
    echo "kill $K/$N: FAIL (crash run exited $CRASH_RC, want $CRASH_EXIT)"
    FAILURES=$((FAILURES + 1))
    continue
  fi
  if [ ! -f "$CKPT" ]; then
    echo "kill $K/$N: FAIL (no snapshot survived the crash)"
    FAILURES=$((FAILURES + 1))
    continue
  fi

  # Resume from the survivor; the search output must match the reference.
  RES_RC=0
  "$BIN" "$SEED" --workers 2 --checkpoint "$CKPT" --resume \
    > "$TMP/resume.$K.out" 2> "$TMP/resume.$K.err" || RES_RC=$?
  if [ "$RES_RC" != "$REF_RC" ]; then
    echo "kill $K/$N: FAIL (resume exited $RES_RC, reference $REF_RC)"
    FAILURES=$((FAILURES + 1))
    continue
  fi
  if grep -q '^resume: .* -- starting cold' "$TMP/resume.$K.err"; then
    echo "kill $K/$N: FAIL (survivor snapshot was rejected)"
    FAILURES=$((FAILURES + 1))
    continue
  fi
  strip_traffic "$TMP/resume.$K.out" > "$TMP/resume.$K.clean"
  if ! diff -u "$TMP/reference.clean" "$TMP/resume.$K.clean" \
    > "$TMP/diff.$K"; then
    echo "kill $K/$N: FAIL (resumed output diverged)"
    sed 's/^/    /' "$TMP/diff.$K"
    FAILURES=$((FAILURES + 1))
    continue
  fi
  echo "kill $K/$N: PASS"
done

if [ "$FAILURES" != 0 ]; then
  echo "crash matrix: $FAILURES/$N kill points FAILED"
  exit 1
fi
echo "crash matrix: all $N kill points byte-identical after resume"
