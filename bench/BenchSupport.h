//===- bench/BenchSupport.h - Shared bench main with --metrics --*- C++ -*-===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every bench binary uses SWA_BENCH_MAIN() instead of BENCHMARK_MAIN():
/// it accepts a `--metrics` flag (stripped before google-benchmark sees
/// the arguments) that turns the observability layer on for the whole
/// process. Simulation-driving benchmarks then call exportObsCounters()
/// after their measurement loop so the engine counter totals land in the
/// per-benchmark user counters — and therefore in the JSON emitted via
/// `--benchmark_out=BENCH_*.json`, giving each wall-time point its
/// event-count context. A full text report also goes to stderr at exit.
///
//===----------------------------------------------------------------------===//

#ifndef SWA_BENCH_BENCHSUPPORT_H
#define SWA_BENCH_BENCHSUPPORT_H

#include "obs/Metrics.h"

#include <benchmark/benchmark.h>

#include <iostream>
#include <string_view>

namespace swa {
namespace benchsupport {

/// Strips every `--metrics` occurrence from argv; returns true when one
/// was present.
inline bool consumeMetricsFlag(int &Argc, char **Argv) {
  bool Found = false;
  int W = 1;
  for (int I = 1; I < Argc; ++I) {
    if (std::string_view(Argv[I]) == "--metrics") {
      Found = true;
      continue;
    }
    Argv[W++] = Argv[I];
  }
  Argc = W;
  return Found;
}

/// Copies every obs registry counter into the benchmark's user counters
/// (prefixed "obs."), then resets the registry so the next benchmark
/// reports only its own events. No-op when metrics are off.
inline void exportObsCounters(benchmark::State &State) {
  if (!obs::enabled())
    return;
  for (const auto &[Name, Value] : obs::Registry::global().counterValues())
    State.counters["obs." + Name] =
        benchmark::Counter(static_cast<double>(Value));
  obs::Registry::global().reset();
}

} // namespace benchsupport
} // namespace swa

/// How THIS binary (and the swa libraries it statically links) was
/// compiled. Google benchmark's own "library_build_type" context key
/// describes the prebuilt libbenchmark — on Debian that library is built
/// without NDEBUG and self-reports "debug" even when every measured
/// instruction is from a Release build — so recording scripts gate on
/// this key instead (bench/run_baseline.sh).
#ifdef NDEBUG
#define SWA_BENCH_BUILD_TYPE "release"
#else
#define SWA_BENCH_BUILD_TYPE "debug"
#endif

#define SWA_BENCH_MAIN()                                                    \
  int main(int argc, char **argv) {                                         \
    char arg0_default[] = "benchmark";                                      \
    char *args_default = arg0_default;                                      \
    if (!argv) {                                                            \
      argc = 1;                                                             \
      argv = &args_default;                                                 \
    }                                                                       \
    if (swa::benchsupport::consumeMetricsFlag(argc, argv))                  \
      swa::obs::setEnabled(true);                                           \
    ::benchmark::Initialize(&argc, argv);                                   \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))               \
      return 1;                                                             \
    ::benchmark::AddCustomContext("swa_build_type", SWA_BENCH_BUILD_TYPE);  \
    ::benchmark::RunSpecifiedBenchmarks();                                  \
    ::benchmark::Shutdown();                                                \
    if (swa::obs::enabled()) {                                              \
      std::cerr << "--- observability report (--metrics) ---\n";            \
      swa::obs::report(std::cerr, false);                                   \
    }                                                                       \
    return 0;                                                               \
  }                                                                         \
  int main(int, char **)

#endif // SWA_BENCH_BENCHSUPPORT_H
