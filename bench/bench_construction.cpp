//===- bench/bench_construction.cpp - E3: Algorithm 1 cost -----------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// Measures instance construction (Algorithm 1) alone across configuration
// sizes: the paper's approach regenerates the NSA instance for every
// candidate configuration a scheduling tool proposes, so construction must
// scale linearly with configuration size.
//
//===----------------------------------------------------------------------===//

#include "core/InstanceBuilder.h"
#include "gen/Workload.h"
#include "models/ModelLibrary.h"
#include "sa/NetworkBuilder.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>

using namespace swa;

static void BM_BuildModel(benchmark::State &State) {
  int64_t TargetJobs = State.range(0);
  cfg::Config Config = gen::industrialConfigWithJobs(TargetJobs, /*Seed=*/1);
  size_t Automata = 0;
  for (auto _ : State) {
    Result<core::BuiltModel> Model = core::buildModel(Config);
    if (!Model.ok()) {
      State.SkipWithError(Model.error().message().c_str());
      return;
    }
    Automata = Model->Net->Automata.size();
    benchmark::DoNotOptimize(Model->Net);
  }
  State.counters["jobs"] = static_cast<double>(Config.jobCount());
  State.counters["automata"] = static_cast<double>(Automata);
}
BENCHMARK(BM_BuildModel)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000)
    ->Arg(4000)
    ->Arg(8000)
    ->Arg(12500)
    ->Unit(benchmark::kMillisecond);

// Construction with a warm shape-keyed bytecode cache: the USL
// compilation of every guard/invariant/update site is reused from a
// previous same-shape build (window tables are data, not code), so the
// steady-state rebuild pays structure + binding only. Compare against
// BM_BuildModel at the same argument — the gap is what an arena miss
// costs a search *after* the first candidate of each shape.
static void BM_BuildModelSharedBytecode(benchmark::State &State) {
  int64_t TargetJobs = State.range(0);
  cfg::Config Config = gen::industrialConfigWithJobs(TargetJobs, /*Seed=*/1);
  core::BytecodeCache Cache;
  // The first build compiles and seeds the cache; every timed build hits.
  Result<core::BuiltModel> Warm =
      core::buildModel(Config, /*PublishMetrics=*/false, &Cache);
  if (!Warm.ok()) {
    State.SkipWithError(Warm.error().message().c_str());
    return;
  }
  size_t Automata = 0;
  for (auto _ : State) {
    Result<core::BuiltModel> Model =
        core::buildModel(Config, /*PublishMetrics=*/false, &Cache);
    if (!Model.ok()) {
      State.SkipWithError(Model.error().message().c_str());
      return;
    }
    Automata = Model->Net->Automata.size();
    benchmark::DoNotOptimize(Model->Net);
  }
  State.counters["jobs"] = static_cast<double>(Config.jobCount());
  State.counters["automata"] = static_cast<double>(Automata);
  State.counters["bytecode_shapes"] = static_cast<double>(Cache.size());
}
BENCHMARK(BM_BuildModelSharedBytecode)
    ->Arg(500)
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond);

// The front-end alone: parsing + type checking the component library
// against a configuration-sized set of global declarations.
static void BM_CompileComponentLibrary(benchmark::State &State) {
  for (auto _ : State) {
    sa::NetworkBuilder NB;
    if (Error E = NB.addGlobals(models::globalDeclsSource(256, 32, 64))) {
      State.SkipWithError(E.message().c_str());
      return;
    }
    auto Lib = models::ModelLibrary::create(NB.globalDecls());
    if (!Lib.ok()) {
      State.SkipWithError(Lib.error().message().c_str());
      return;
    }
    benchmark::DoNotOptimize(Lib);
  }
}
BENCHMARK(BM_CompileComponentLibrary)->Unit(benchmark::kMillisecond);

SWA_BENCH_MAIN();
