//===- bench/bench_schedtool.cpp - E6: scheduling-tool integration ---------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// The §4 integration experiment: the configuration search evaluates
// candidates through the model. Measures candidate-evaluation throughput
// and the search success rate as the target core utilization rises (the
// knee where schedulable layouts stop existing).
//
//===----------------------------------------------------------------------===//

#include "gen/Workload.h"
#include "schedtool/ConfigSearch.h"
#include "schedtool/FleetSearch.h"
#include "schedtool/Snapshot.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

using namespace swa;

static void BM_SearchAtUtilization(benchmark::State &State) {
  double Utilization = static_cast<double>(State.range(0)) / 100.0;
  int Workers = static_cast<int>(State.range(1));
  gen::IndustrialParams Params;
  Params.Modules = 2;
  Params.CoresPerModule = 2;
  Params.PartitionsPerCore = 2;
  Params.CoreUtilization = Utilization;
  Params.Seed = 3;
  cfg::Config Base = gen::industrialConfig(Params);
  for (cfg::Partition &P : Base.Partitions) {
    P.Core = -1;
    P.Windows.clear();
  }

  int Evaluated = 0;
  int64_t TotalEvaluated = 0;
  int Found = 0;
  for (auto _ : State) {
    schedtool::SearchProblem Problem;
    Problem.Base = Base;
    Problem.Seed = 11;
    Problem.MaxIterations = 25;
    Problem.Workers = Workers;
    Result<schedtool::SearchResult> Res =
        schedtool::searchConfiguration(Problem);
    if (!Res.ok()) {
      State.SkipWithError(Res.error().message().c_str());
      return;
    }
    Evaluated = Res->ConfigurationsEvaluated;
    TotalEvaluated += Res->ConfigurationsEvaluated;
    Found += Res->Found ? 1 : 0;
  }
  State.counters["evaluated"] = Evaluated;
  State.counters["found"] = Found;
  State.counters["utilization"] = Utilization;
  State.counters["workers"] = Workers;
  // Candidate-evaluation throughput: the metric the worker count scales.
  State.counters["candidates_per_sec"] = benchmark::Counter(
      static_cast<double>(TotalEvaluated), benchmark::Counter::kIsRate);
  swa::benchsupport::exportObsCounters(State);
}
BENCHMARK(BM_SearchAtUtilization)
    ->ArgsProduct({{30, 45, 60, 75, 90}, {1}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

// Worker-scaling axis at the utilization knee (the search iterates there,
// so batches are full). Throughput should scale with physical cores; on a
// single-core host the 2/4-worker rows only confirm that threading adds
// no more than scheduling overhead.
BENCHMARK(BM_SearchAtUtilization)
    ->ArgsProduct({{75}, {2, 4}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

// The acceleration headline: an unschedulable-heavy, message-free
// workload (every candidate decomposes per core group; every candidate
// fails, and fails early). Construction: four "big" partitions need 11
// window ticks per 20-tick frame (a cost-10 period-20 task plus a
// cost-1 period-40 task), two "small" ones need 10, and two "light"
// ones need 9 and carry a cost-1 period-20000 task that stretches the
// hyperperiod to 20000. Every 2-partition core pairing that includes a
// big partition needs >= 21 of the frame's 20 ticks, and there are more
// bigs than cores can avoid — so every reachable binding is
// unschedulable with its first deadline miss at t <= 40, a factor 500
// before the hyperperiod. That is the regime the acceleration layers
// target: early exit stops at the miss, the per-core chains inherit it
// as a horizon cap, and revisited layouts hit the verdict cache. Arg 0
// toggles all three layers against the plain full-run search; both rows
// execute the identical candidate sequence, so candidates_per_sec is a
// like-for-like throughput comparison.
static cfg::Config packedUnschedulableConfig() {
  cfg::Config Base;
  Base.Name = "packed-unschedulable";
  Base.NumCoreTypes = 1;
  for (int M = 0; M < 2; ++M)
    for (int K = 0; K < 2; ++K)
      Base.Cores.push_back(
          {"m" + std::to_string(M) + "c" + std::to_string(K), M, 0});
  for (int P = 0; P < 8; ++P) {
    cfg::Partition Part;
    Part.Name = "p" + std::to_string(P);
    Part.Scheduler = cfg::SchedulerKind::FPPS;
    Part.Core = -1;
    cfg::TimeValue Hi = P < 4 ? 10 : (P < 6 ? 9 : 8);
    Part.Tasks.push_back({Part.Name + "_hi", 100, {Hi}, 20, 20});
    Part.Tasks.push_back({Part.Name + "_mid", 50, {1}, 40, 40});
    if (P >= 6)
      Part.Tasks.push_back({Part.Name + "_lo", 1, {1}, 20000, 20000});
    Base.Partitions.push_back(std::move(Part));
  }
  return Base;
}

static void BM_SearchUnschedulable(benchmark::State &State) {
  bool Layers = State.range(0) != 0;
  int Workers = static_cast<int>(State.range(1));
  cfg::Config Base = packedUnschedulableConfig();

  int64_t TotalEvaluated = 0;
  int64_t Hits = 0, Misses = 0, Dups = 0, Decomposed = 0;
  for (auto _ : State) {
    schedtool::SearchProblem Problem;
    Problem.Base = Base;
    Problem.Seed = 29;
    Problem.MaxIterations = 60;
    Problem.Workers = Workers;
    Problem.UseVerdictCache = Layers;
    Problem.UseEarlyExit = Layers;
    Problem.UseDecomposition = Layers;
    Result<schedtool::SearchResult> Res =
        schedtool::searchConfiguration(Problem);
    if (!Res.ok()) {
      State.SkipWithError(Res.error().message().c_str());
      return;
    }
    TotalEvaluated += Res->ConfigurationsEvaluated;
    Hits += Res->CacheHits;
    Misses += Res->CacheMisses;
    Dups += Res->DuplicateCandidates;
    Decomposed += Res->DecomposedCandidates;
  }
  State.counters["layers"] = Layers ? 1 : 0;
  State.counters["workers"] = Workers;
  State.counters["candidates_per_sec"] = benchmark::Counter(
      static_cast<double>(TotalEvaluated), benchmark::Counter::kIsRate);
  State.counters["cache_hit_rate"] =
      TotalEvaluated > 0
          ? static_cast<double>(Hits + Dups) /
                static_cast<double>(TotalEvaluated)
          : 0.0;
  State.counters["decomposed"] = static_cast<double>(Decomposed);
  swa::benchsupport::exportObsCounters(State);
}
BENCHMARK(BM_SearchUnschedulable)
    ->ArgsProduct({{0, 1}, {1, 2}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

// The incremental headline: a neighborhood search where candidates are
// small mutations of a shared base, every candidate decomposes per core
// (message-free), and the deadline misses land at the *tail* of the
// horizon — so the early exit barely helps and the old layers pay a
// near-full-horizon simulation per component per candidate. The
// workload is a generated industrial config (4 cores, 8 partitions,
// heterogeneous periods) pushed to utilization 0.80: proportional
// window shares misalign with the longer-period tasks' release times,
// so no boost assignment the search reaches is schedulable — seed 27
// runs all 120 rounds without a find, with first misses at t = L/2 or
// t = L. A boost resample dirties one core's component and leaves the
// other three byte-identical to the round base, so with the incremental
// layers on most components replay from the component cache (the hit
// rate climbs toward ~50% as the neighborhood revisits window splits)
// and the rest rebind an arena instance instead of rebuilding. Arg 0
// toggles the three incremental layers (component cache, dirty
// tracking, instance reuse) with the older layers on in both rows:
// identical candidate sequence, like-for-like candidates_per_sec.
static cfg::Config neighborhoodConfig() {
  gen::IndustrialParams Params;
  Params.Modules = 2;
  Params.CoresPerModule = 2;
  Params.PartitionsPerCore = 2;
  Params.CoreUtilization = 0.8;
  Params.MessageProbability = 0.0;
  Params.Seed = 27;
  cfg::Config Base = gen::industrialConfig(Params);
  for (cfg::Partition &P : Base.Partitions) {
    P.Core = -1;
    P.Windows.clear();
  }
  return Base;
}

static void BM_SearchNeighborhood(benchmark::State &State) {
  bool Incremental = State.range(0) != 0;
  int Workers = static_cast<int>(State.range(1));
  cfg::Config Base = neighborhoodConfig();

  int64_t TotalEvaluated = 0;
  int64_t CompHits = 0, CompMisses = 0, Dirty = 0, Clean = 0, Sims = 0;
  for (auto _ : State) {
    schedtool::SearchProblem Problem;
    Problem.Base = Base;
    Problem.Seed = 41;
    Problem.MaxIterations = 120;
    Problem.Workers = Workers;
    Problem.UseComponentCache = Incremental;
    Problem.UseDirtyTracking = Incremental;
    Problem.UseInstanceReuse = Incremental;
    Result<schedtool::SearchResult> Res =
        schedtool::searchConfiguration(Problem);
    if (!Res.ok()) {
      State.SkipWithError(Res.error().message().c_str());
      return;
    }
    TotalEvaluated += Res->ConfigurationsEvaluated;
    CompHits += Res->ComponentCacheHits;
    CompMisses += Res->ComponentCacheMisses;
    Dirty += Res->DirtyComponents;
    Clean += Res->CleanComponentsReused;
    Sims += Res->ComponentsSimulated;
  }
  State.counters["incremental"] = Incremental ? 1 : 0;
  State.counters["workers"] = Workers;
  State.counters["candidates_per_sec"] = benchmark::Counter(
      static_cast<double>(TotalEvaluated), benchmark::Counter::kIsRate);
  State.counters["components_simulated"] = static_cast<double>(Sims);
  State.counters["component_hit_rate"] =
      CompHits + CompMisses > 0
          ? static_cast<double>(CompHits) /
                static_cast<double>(CompHits + CompMisses)
          : 0.0;
  State.counters["dirty_components_per_candidate"] =
      TotalEvaluated > 0 ? static_cast<double>(Dirty) /
                               static_cast<double>(TotalEvaluated)
                         : 0.0;
  State.counters["clean_components_reused"] = static_cast<double>(Clean);
  swa::benchsupport::exportObsCounters(State);
}
BENCHMARK(BM_SearchNeighborhood)
    ->ArgsProduct({{0, 1}, {1, 2}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

// The durable-search axis: what checkpointing costs and what resuming
// buys. Three rows over the same neighborhood workload (identical
// candidate sequence and verdict stream in all three — durability never
// changes the result):
//   mode 0  cold search, no checkpointing — the baseline.
//   mode 1  cold search checkpointing every round boundary — the
//           overhead row: serialization + CRC + atomic-rename traffic
//           per round, the worst cadence a user can configure.
//   mode 2  warm start from the terminal snapshot of a prior identical
//           run (cache-only seed, per-iteration load included) — the
//           resume row: every verdict replays from the warm cache, so
//           candidates_per_sec is the snapshot-hit fast path.
static void BM_SearchDurable(benchmark::State &State) {
  int Mode = static_cast<int>(State.range(0));
  cfg::Config Base = neighborhoodConfig();
  std::string Path = "swa_bench_durable.ckpt";

  auto MakeProblem = [&Base] {
    schedtool::SearchProblem Problem;
    Problem.Base = Base;
    Problem.Seed = 41;
    Problem.MaxIterations = 60;
    return Problem;
  };

  // The warm row resumes from a finished run's snapshot; write it once.
  if (Mode == 2) {
    schedtool::SearchProblem Prep = MakeProblem();
    Prep.CheckpointPath = Path;
    Result<schedtool::SearchResult> R = schedtool::searchConfiguration(Prep);
    if (!R.ok()) {
      State.SkipWithError(R.error().message().c_str());
      return;
    }
  }

  int64_t TotalEvaluated = 0;
  schedtool::SnapshotStats Stats;
  for (auto _ : State) {
    schedtool::SearchProblem Problem = MakeProblem();
    Problem.CkptStats = &Stats;
    schedtool::Snapshot Warm;
    if (Mode == 1)
      Problem.CheckpointPath = Path;
    if (Mode == 2) {
      Result<schedtool::Snapshot> L = schedtool::loadSnapshot(Path, &Stats);
      if (!L.ok()) {
        State.SkipWithError(L.error().message().c_str());
        return;
      }
      Warm = L.takeValue();
      Warm.HasSearchState = false; // cache-only seed: the search re-runs
      Problem.Resume = &Warm;
    }
    Result<schedtool::SearchResult> Res =
        schedtool::searchConfiguration(Problem);
    if (!Res.ok()) {
      State.SkipWithError(Res.error().message().c_str());
      return;
    }
    TotalEvaluated += Res->ConfigurationsEvaluated;
  }
  std::remove(Path.c_str());
  State.counters["mode"] = Mode;
  State.counters["candidates_per_sec"] = benchmark::Counter(
      static_cast<double>(TotalEvaluated), benchmark::Counter::kIsRate);
  State.counters["snapshots_written"] =
      static_cast<double>(Stats.SnapshotsWritten);
  State.counters["snapshot_bytes_written"] =
      static_cast<double>(Stats.BytesWritten);
  State.counters["snapshot_warm_hits"] =
      static_cast<double>(Stats.SnapshotHits);
  swa::benchsupport::exportObsCounters(State);
}
BENCHMARK(BM_SearchDurable)
    ->ArgsProduct({{0, 1, 2}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

// The fleet-scaling axis (E9): N in-process workers shard the candidate
// space of the neighborhood workload over one exchange directory; every
// worker delivers the *full* byte-identical SearchResult (verified by
// the coordinator's merge), so the fleet's useful output is N complete
// results per wall-clock run. fleet_candidates_per_sec is that
// aggregate decided-verdict throughput — Shards x evaluated / wall; on
// a single-core host it rises with the fleet because each worker
// simulates only ~1/N of the items and adopts the rest from peers
// (peer_hit_rate), not because more silicon joined. The shards=1 row is
// the exchange-free baseline: its fleet_candidates_per_sec is the
// candidates_per_sec of the plain search.
// Integration-scale variant of the neighborhood workload: sharding pays
// for the *simulation* share of a candidate, so the fleet axis is
// measured where simulation dominates the round — 3 modules (~1.5x the
// neighborhood job count) with inter-partition messages, which couple
// the cores and force a full-system simulation per candidate instead of
// decomposed per-core components. On the small message-free
// neighborhoodConfig the per-worker serial path (planning,
// canonicalization, cache, reduce) is over half the run and is
// duplicated per shard, which caps the aggregate speedup well below the
// simulation-bound regime.
static cfg::Config fleetConfig() {
  gen::IndustrialParams Params;
  Params.Modules = 3;
  Params.CoresPerModule = 2;
  Params.PartitionsPerCore = 2;
  Params.CoreUtilization = 0.8;
  Params.MessageProbability = 0.5;
  Params.Seed = 27;
  cfg::Config Base = gen::industrialConfig(Params);
  for (cfg::Partition &P : Base.Partitions) {
    P.Core = -1;
    P.Windows.clear();
  }
  return Base;
}

static void BM_SearchFleet(benchmark::State &State) {
  int Shards = static_cast<int>(State.range(0));
  cfg::Config Base = fleetConfig();
  std::string Dir = "swa_bench_fleet_exchange";

  int64_t AggregateEvaluated = 0;
  uint64_t ItemsOwned = 0, ItemsFetched = 0, Fallbacks = 0;
  int64_t PerShardEvaluated = 0;
  for (auto _ : State) {
    schedtool::FleetProblem FP;
    FP.Problem.Base = Base;
    FP.Problem.Seed = 41;
    FP.Problem.MaxIterations = 60;
    FP.Shards = Shards;
    FP.ExchangeDir = Dir;
    Result<schedtool::FleetResult> Res = schedtool::runFleetSearch(FP);
    if (!Res.ok()) {
      State.SkipWithError(Res.error().message().c_str());
      return;
    }
    PerShardEvaluated = Res->Res.ConfigurationsEvaluated;
    AggregateEvaluated +=
        static_cast<int64_t>(Shards) * Res->Res.ConfigurationsEvaluated;
    for (const schedtool::ExchangeStats &Ex : Res->ShardExchange) {
      ItemsOwned += Ex.ItemsOwned;
      ItemsFetched += Ex.ItemsFetched;
      Fallbacks += Ex.FallbackSimulations;
    }
  }
  State.counters["shards"] = Shards;
  State.counters["evaluated"] = static_cast<double>(PerShardEvaluated);
  // Aggregate decided-verdict throughput across the fleet — the series
  // compare_bench.py gates.
  State.counters["fleet_candidates_per_sec"] = benchmark::Counter(
      static_cast<double>(AggregateEvaluated), benchmark::Counter::kIsRate);
  // Fraction of the fleet's work items adopted from a peer's
  // publication instead of simulated locally (0 for the exchange-free
  // row; the ideal for N shards is (N-1)/N minus what the verdict
  // cache already absorbed).
  uint64_t TotalItems = ItemsOwned + ItemsFetched + Fallbacks;
  State.counters["peer_hit_rate"] =
      TotalItems > 0 ? static_cast<double>(ItemsFetched) /
                           static_cast<double>(TotalItems)
                     : 0.0;
  State.counters["fallback_simulations"] = static_cast<double>(Fallbacks);
  swa::benchsupport::exportObsCounters(State);
}
BENCHMARK(BM_SearchFleet)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

SWA_BENCH_MAIN();
