//===- bench/bench_schedtool.cpp - E6: scheduling-tool integration ---------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// The §4 integration experiment: the configuration search evaluates
// candidates through the model. Measures candidate-evaluation throughput
// and the search success rate as the target core utilization rises (the
// knee where schedulable layouts stop existing).
//
//===----------------------------------------------------------------------===//

#include "gen/Workload.h"
#include "schedtool/ConfigSearch.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>

using namespace swa;

static void BM_SearchAtUtilization(benchmark::State &State) {
  double Utilization = static_cast<double>(State.range(0)) / 100.0;
  int Workers = static_cast<int>(State.range(1));
  gen::IndustrialParams Params;
  Params.Modules = 2;
  Params.CoresPerModule = 2;
  Params.PartitionsPerCore = 2;
  Params.CoreUtilization = Utilization;
  Params.Seed = 3;
  cfg::Config Base = gen::industrialConfig(Params);
  for (cfg::Partition &P : Base.Partitions) {
    P.Core = -1;
    P.Windows.clear();
  }

  int Evaluated = 0;
  int64_t TotalEvaluated = 0;
  int Found = 0;
  for (auto _ : State) {
    schedtool::SearchProblem Problem;
    Problem.Base = Base;
    Problem.Seed = 11;
    Problem.MaxIterations = 25;
    Problem.Workers = Workers;
    Result<schedtool::SearchResult> Res =
        schedtool::searchConfiguration(Problem);
    if (!Res.ok()) {
      State.SkipWithError(Res.error().message().c_str());
      return;
    }
    Evaluated = Res->ConfigurationsEvaluated;
    TotalEvaluated += Res->ConfigurationsEvaluated;
    Found += Res->Found ? 1 : 0;
  }
  State.counters["evaluated"] = Evaluated;
  State.counters["found"] = Found;
  State.counters["utilization"] = Utilization;
  State.counters["workers"] = Workers;
  // Candidate-evaluation throughput: the metric the worker count scales.
  State.counters["candidates_per_sec"] = benchmark::Counter(
      static_cast<double>(TotalEvaluated), benchmark::Counter::kIsRate);
  swa::benchsupport::exportObsCounters(State);
}
BENCHMARK(BM_SearchAtUtilization)
    ->ArgsProduct({{30, 45, 60, 75, 90}, {1}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

// Worker-scaling axis at the utilization knee (the search iterates there,
// so batches are full). Throughput should scale with physical cores; on a
// single-core host the 2/4-worker rows only confirm that threading adds
// no more than scheduling overhead.
BENCHMARK(BM_SearchAtUtilization)
    ->ArgsProduct({{75}, {2, 4}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

SWA_BENCH_MAIN();
