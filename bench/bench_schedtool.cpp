//===- bench/bench_schedtool.cpp - E6: scheduling-tool integration ---------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// The §4 integration experiment: the configuration search evaluates
// candidates through the model. Measures candidate-evaluation throughput
// and the search success rate as the target core utilization rises (the
// knee where schedulable layouts stop existing).
//
//===----------------------------------------------------------------------===//

#include "gen/Workload.h"
#include "schedtool/ConfigSearch.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>

using namespace swa;

static void BM_SearchAtUtilization(benchmark::State &State) {
  double Utilization = static_cast<double>(State.range(0)) / 100.0;
  gen::IndustrialParams Params;
  Params.Modules = 2;
  Params.CoresPerModule = 2;
  Params.PartitionsPerCore = 2;
  Params.CoreUtilization = Utilization;
  Params.Seed = 3;
  cfg::Config Base = gen::industrialConfig(Params);
  for (cfg::Partition &P : Base.Partitions) {
    P.Core = -1;
    P.Windows.clear();
  }

  int Evaluated = 0;
  int Found = 0;
  for (auto _ : State) {
    schedtool::SearchProblem Problem;
    Problem.Base = Base;
    Problem.Seed = 11;
    Problem.MaxIterations = 25;
    Result<schedtool::SearchResult> Res =
        schedtool::searchConfiguration(Problem);
    if (!Res.ok()) {
      State.SkipWithError(Res.error().message().c_str());
      return;
    }
    Evaluated = Res->ConfigurationsEvaluated;
    Found += Res->Found ? 1 : 0;
  }
  State.counters["evaluated"] = Evaluated;
  State.counters["found"] = Found;
  State.counters["utilization"] = Utilization;
  swa::benchsupport::exportObsCounters(State);
}
BENCHMARK(BM_SearchAtUtilization)
    ->Arg(30)
    ->Arg(45)
    ->Arg(60)
    ->Arg(75)
    ->Arg(90)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

SWA_BENCH_MAIN();
