//===- bench/bench_schedtool.cpp - E6: scheduling-tool integration ---------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// The §4 integration experiment: the configuration search evaluates
// candidates through the model. Measures candidate-evaluation throughput
// and the search success rate as the target core utilization rises (the
// knee where schedulable layouts stop existing).
//
//===----------------------------------------------------------------------===//

#include "gen/Workload.h"
#include "schedtool/ConfigSearch.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>

using namespace swa;

static void BM_SearchAtUtilization(benchmark::State &State) {
  double Utilization = static_cast<double>(State.range(0)) / 100.0;
  int Workers = static_cast<int>(State.range(1));
  gen::IndustrialParams Params;
  Params.Modules = 2;
  Params.CoresPerModule = 2;
  Params.PartitionsPerCore = 2;
  Params.CoreUtilization = Utilization;
  Params.Seed = 3;
  cfg::Config Base = gen::industrialConfig(Params);
  for (cfg::Partition &P : Base.Partitions) {
    P.Core = -1;
    P.Windows.clear();
  }

  int Evaluated = 0;
  int64_t TotalEvaluated = 0;
  int Found = 0;
  for (auto _ : State) {
    schedtool::SearchProblem Problem;
    Problem.Base = Base;
    Problem.Seed = 11;
    Problem.MaxIterations = 25;
    Problem.Workers = Workers;
    Result<schedtool::SearchResult> Res =
        schedtool::searchConfiguration(Problem);
    if (!Res.ok()) {
      State.SkipWithError(Res.error().message().c_str());
      return;
    }
    Evaluated = Res->ConfigurationsEvaluated;
    TotalEvaluated += Res->ConfigurationsEvaluated;
    Found += Res->Found ? 1 : 0;
  }
  State.counters["evaluated"] = Evaluated;
  State.counters["found"] = Found;
  State.counters["utilization"] = Utilization;
  State.counters["workers"] = Workers;
  // Candidate-evaluation throughput: the metric the worker count scales.
  State.counters["candidates_per_sec"] = benchmark::Counter(
      static_cast<double>(TotalEvaluated), benchmark::Counter::kIsRate);
  swa::benchsupport::exportObsCounters(State);
}
BENCHMARK(BM_SearchAtUtilization)
    ->ArgsProduct({{30, 45, 60, 75, 90}, {1}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

// Worker-scaling axis at the utilization knee (the search iterates there,
// so batches are full). Throughput should scale with physical cores; on a
// single-core host the 2/4-worker rows only confirm that threading adds
// no more than scheduling overhead.
BENCHMARK(BM_SearchAtUtilization)
    ->ArgsProduct({{75}, {2, 4}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

// The acceleration headline: an unschedulable-heavy, message-free
// workload (every candidate decomposes per core group; every candidate
// fails, and fails early). Construction: four "big" partitions need 11
// window ticks per 20-tick frame (a cost-10 period-20 task plus a
// cost-1 period-40 task), two "small" ones need 10, and two "light"
// ones need 9 and carry a cost-1 period-20000 task that stretches the
// hyperperiod to 20000. Every 2-partition core pairing that includes a
// big partition needs >= 21 of the frame's 20 ticks, and there are more
// bigs than cores can avoid — so every reachable binding is
// unschedulable with its first deadline miss at t <= 40, a factor 500
// before the hyperperiod. That is the regime the acceleration layers
// target: early exit stops at the miss, the per-core chains inherit it
// as a horizon cap, and revisited layouts hit the verdict cache. Arg 0
// toggles all three layers against the plain full-run search; both rows
// execute the identical candidate sequence, so candidates_per_sec is a
// like-for-like throughput comparison.
static cfg::Config packedUnschedulableConfig() {
  cfg::Config Base;
  Base.Name = "packed-unschedulable";
  Base.NumCoreTypes = 1;
  for (int M = 0; M < 2; ++M)
    for (int K = 0; K < 2; ++K)
      Base.Cores.push_back(
          {"m" + std::to_string(M) + "c" + std::to_string(K), M, 0});
  for (int P = 0; P < 8; ++P) {
    cfg::Partition Part;
    Part.Name = "p" + std::to_string(P);
    Part.Scheduler = cfg::SchedulerKind::FPPS;
    Part.Core = -1;
    cfg::TimeValue Hi = P < 4 ? 10 : (P < 6 ? 9 : 8);
    Part.Tasks.push_back({Part.Name + "_hi", 100, {Hi}, 20, 20});
    Part.Tasks.push_back({Part.Name + "_mid", 50, {1}, 40, 40});
    if (P >= 6)
      Part.Tasks.push_back({Part.Name + "_lo", 1, {1}, 20000, 20000});
    Base.Partitions.push_back(std::move(Part));
  }
  return Base;
}

static void BM_SearchUnschedulable(benchmark::State &State) {
  bool Layers = State.range(0) != 0;
  int Workers = static_cast<int>(State.range(1));
  cfg::Config Base = packedUnschedulableConfig();

  int64_t TotalEvaluated = 0;
  int64_t Hits = 0, Misses = 0, Dups = 0, Decomposed = 0;
  for (auto _ : State) {
    schedtool::SearchProblem Problem;
    Problem.Base = Base;
    Problem.Seed = 29;
    Problem.MaxIterations = 60;
    Problem.Workers = Workers;
    Problem.UseVerdictCache = Layers;
    Problem.UseEarlyExit = Layers;
    Problem.UseDecomposition = Layers;
    Result<schedtool::SearchResult> Res =
        schedtool::searchConfiguration(Problem);
    if (!Res.ok()) {
      State.SkipWithError(Res.error().message().c_str());
      return;
    }
    TotalEvaluated += Res->ConfigurationsEvaluated;
    Hits += Res->CacheHits;
    Misses += Res->CacheMisses;
    Dups += Res->DuplicateCandidates;
    Decomposed += Res->DecomposedCandidates;
  }
  State.counters["layers"] = Layers ? 1 : 0;
  State.counters["workers"] = Workers;
  State.counters["candidates_per_sec"] = benchmark::Counter(
      static_cast<double>(TotalEvaluated), benchmark::Counter::kIsRate);
  State.counters["cache_hit_rate"] =
      TotalEvaluated > 0
          ? static_cast<double>(Hits + Dups) /
                static_cast<double>(TotalEvaluated)
          : 0.0;
  State.counters["decomposed"] = static_cast<double>(Decomposed);
  swa::benchsupport::exportObsCounters(State);
}
BENCHMARK(BM_SearchUnschedulable)
    ->ArgsProduct({{0, 1}, {1, 2}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

SWA_BENCH_MAIN();
