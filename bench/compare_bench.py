#!/usr/bin/env python3
# ===- bench/compare_bench.py - Benchmark regression gate ------------------===#
#
# Part of the swa-sched project.
#
# Diffs two google-benchmark JSON files (as written by run_baseline.sh or
# a raw --benchmark_out run) and fails when any matched benchmark
# regresses by more than the threshold on wall time or on a watched
# counter. Benchmarks are matched by (binary, name); entries present in
# only one file are reported but never fail the gate (new benchmarks
# appear, old ones are retired — that is trajectory, not regression).
#
#   $ bench/compare_bench.py BASELINE.json CURRENT.json \
#         [--threshold 0.10] [--counter candidates_per_sec ...]
#
# Time regressions are "current slower than baseline"; counter
# regressions are "current rate lower than baseline" (every watched
# counter is rate-like: bigger is better). Exit codes: 0 clean,
# 1 regression, 2 usage/parse error.
#
# ===----------------------------------------------------------------------===#
import argparse
import json
import sys

# Rate-style user counters worth gating by default. Wall time covers the
# rest; obs.* event counts are diagnostics, not performance.
DEFAULT_COUNTERS = ["candidates_per_sec", "actions_per_sec"]


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        key = (b.get("binary", ""), b.get("name", ""))
        out[key] = b
    return out, doc.get("context", {})


def fmt(key):
    binary, name = key
    return f"{binary}:{name}" if binary else name


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="maximum tolerated fractional regression "
                         "(default 0.10 = 10%%)")
    ap.add_argument("--counter", action="append", default=None,
                    metavar="NAME",
                    help="rate counter to gate (repeatable; default: "
                         + ", ".join(DEFAULT_COUNTERS) + ")")
    args = ap.parse_args()
    counters = args.counter if args.counter else DEFAULT_COUNTERS

    base, base_ctx = load(args.baseline)
    cur, cur_ctx = load(args.current)

    for label, ctx in (("baseline", base_ctx), ("current", cur_ctx)):
        swa = ctx.get("swa_build_type")
        if swa and swa != "release":
            print(f"warning: {label} was recorded from a {swa} build; "
                  "the comparison is not meaningful", file=sys.stderr)

    only_base = sorted(set(base) - set(cur))
    only_cur = sorted(set(cur) - set(base))
    for k in only_base:
        print(f"note: {fmt(k)} only in baseline (retired?)")
    for k in only_cur:
        print(f"note: {fmt(k)} only in current (new)")

    regressions = []
    compared = 0
    for key in sorted(set(base) & set(cur)):
        b, c = base[key], cur[key]
        compared += 1
        bt, ct = b.get("real_time"), c.get("real_time")
        if bt and ct and bt > 0:
            delta = (ct - bt) / bt
            if delta > args.threshold:
                regressions.append(
                    f"{fmt(key)}: real_time {bt:.3g} -> {ct:.3g} "
                    f"{b.get('time_unit', 'ns')} (+{delta:.1%})")
        for name in counters:
            bv, cv = b.get(name), c.get(name)
            if bv is None or cv is None or bv <= 0:
                continue
            delta = (bv - cv) / bv
            if delta > args.threshold:
                regressions.append(
                    f"{fmt(key)}: {name} {bv:.4g} -> {cv:.4g} "
                    f"(-{delta:.1%})")

    if compared == 0:
        sys.exit("error: no benchmarks in common between the two files")
    if regressions:
        print(f"{len(regressions)} regression(s) past "
              f"{args.threshold:.0%}:")
        for r in regressions:
            print(f"  {r}")
        sys.exit(1)
    print(f"clean: {compared} benchmarks compared, none regressed past "
          f"{args.threshold:.0%}")


if __name__ == "__main__":
    main()
