#!/usr/bin/env python3
# ===- bench/compare_bench.py - Benchmark regression gate ------------------===#
#
# Part of the swa-sched project.
#
# Diffs two google-benchmark JSON files (as written by run_baseline.sh or
# a raw --benchmark_out run) and fails when any matched benchmark
# regresses by more than the threshold on wall time or on a watched
# counter. Benchmarks are matched by (binary, name). New entries (only in
# current) are informational. Entries or watched counters present in the
# baseline but missing from the current run FAIL the gate: a vanished
# *_per_sec counter is indistinguishable from an infinite regression, and
# a retirement must be stated, not inferred — allowlist it explicitly
# with --allow-missing NAME (a benchmark name or a counter name).
#
#   $ bench/compare_bench.py BASELINE.json CURRENT.json \
#         [--threshold 0.10] [--counter candidates_per_sec ...] \
#         [--allow-missing BM_Old/1 ...]
#
# Committed baselines live at the repo root, so bare names resolve there
# when no such file exists relative to the working directory:
#
#   $ bench/compare_bench.py BENCH_PR5.json BENCH_PR7.json
#
# compares the two recorded trajectory points from anywhere in the tree,
# with the same >10% default gate on wall time and candidates_per_sec.
#
# Time regressions are "current slower than baseline"; counter
# regressions are "current rate lower than baseline" (every watched
# counter is rate-like: bigger is better). Exit codes: 0 clean,
# 1 regression, 2 usage/parse error.
#
# When both inputs are obs::RunReport documents ("swa_run_report": 1, as
# written by --report-out or run_baseline.sh --report) the comparison
# switches to a report diff instead: cache hit rates, the stop-reason
# mix, counter deltas, and per-phase nanoseconds. Rate-like stats
# (*_per_sec) are gated by the same threshold; everything else is
# informational — event counts are workload shape, not performance.
#
# ===----------------------------------------------------------------------===#
import argparse
import json
import os
import sys

# Rate-style user counters worth gating by default. Wall time covers the
# rest; obs.* event counts are diagnostics, not performance.
# fleet_candidates_per_sec is the fleet's aggregate decided-verdict
# throughput (bench_schedtool BM_SearchFleet, recorded by run_fleet.sh).
DEFAULT_COUNTERS = ["candidates_per_sec", "actions_per_sec",
                    "fleet_candidates_per_sec"]


def resolve_baseline(path):
    """A bare file name that does not exist locally names a committed
    baseline at the repo root (where run_baseline.sh writes them)."""
    if os.path.exists(path) or os.path.dirname(path):
        return path
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    rooted = os.path.join(root, path)
    return rooted if os.path.exists(rooted) else path


def load_doc(path):
    path = resolve_baseline(path)
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")


def index_benchmarks(doc):
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        key = (b.get("binary", ""), b.get("name", ""))
        out[key] = b
    return out, doc.get("context", {})


def fmt(key):
    binary, name = key
    return f"{binary}:{name}" if binary else name


def flatten_phases(nodes, prefix=""):
    """RunReport phase forest -> {path: nanos}, depth-first."""
    out = {}
    for node in nodes or []:
        path = prefix + node.get("name", "?")
        out[path] = out.get(path, 0) + int(node.get("ns", 0))
        out.update(flatten_phases(node.get("children"), path + "/"))
    return out


def compare_reports(base, cur, threshold, allow_missing=()):
    """Diff two obs::RunReport documents. Returns the exit code."""
    bt, ct = base.get("tool", "?"), cur.get("tool", "?")
    if bt != ct:
        print(f"warning: comparing reports from different tools "
              f"({bt} vs {ct})", file=sys.stderr)
    print(f"run report diff ({ct}):")

    regressions = []
    bs, cs = base.get("stats", {}), cur.get("stats", {})
    for name in sorted(set(bs) | set(cs)):
        bv, cv = bs.get(name), cs.get(name)
        if bv is None or cv is None:
            print(f"  stat {name}: only in "
                  f"{'baseline' if cv is None else 'current'}")
            # A gated stat that vanished is a failed gate, not a note —
            # unless its retirement is explicitly allowlisted.
            if (cv is None and name.endswith("_per_sec")
                    and name not in allow_missing):
                regressions.append(
                    f"{name}: watched stat missing from current run "
                    "(allowlist with --allow-missing)")
            continue
        print(f"  stat {name}: {bv:.4g} -> {cv:.4g}")
        # Throughput stats gate like benchmark rate counters: lower is a
        # regression. Hit rates etc. are workload shape — report only.
        if name.endswith("_per_sec") and bv > 0:
            delta = (bv - cv) / bv
            if delta > threshold:
                regressions.append(
                    f"{name} {bv:.4g} -> {cv:.4g} (-{delta:.1%})")

    bc, cc = base.get("counters", {}), cur.get("counters", {})
    stop = sorted(n for n in set(bc) | set(cc) if n.startswith("stop."))
    if stop:
        print("  stop-reason mix:")
        for name in stop:
            print(f"    {name[len('stop.'):]}: "
                  f"{bc.get(name, 0)} -> {cc.get(name, 0)}")
    for name in sorted(set(bc) | set(cc)):
        if name.startswith("stop."):
            continue
        bv, cv = bc.get(name, 0), cc.get(name, 0)
        if bv != cv:
            print(f"  counter {name}: {bv} -> {cv}")

    bp = flatten_phases(base.get("phases"))
    cp = flatten_phases(cur.get("phases"))
    for path in sorted(set(bp) | set(cp)):
        bv, cv = bp.get(path, 0), cp.get(path, 0)
        print(f"  phase {path}: {bv / 1e6:.3f} ms -> {cv / 1e6:.3f} ms")

    if regressions:
        print(f"{len(regressions)} regression(s) past {threshold:.0%}:")
        for r in regressions:
            print(f"  {r}")
        return 1
    print(f"clean: report stats within {threshold:.0%}")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="maximum tolerated fractional regression "
                         "(default 0.10 = 10%%)")
    ap.add_argument("--counter", action="append", default=None,
                    metavar="NAME",
                    help="rate counter to gate (repeatable; default: "
                         + ", ".join(DEFAULT_COUNTERS) + ")")
    ap.add_argument("--allow-missing", action="append", default=[],
                    metavar="NAME",
                    help="benchmark (name or binary:name), counter or "
                         "report stat allowed to be absent from the "
                         "current run (repeatable); anything else "
                         "carrying a watched counter fails the gate "
                         "when it disappears")
    args = ap.parse_args()
    counters = args.counter if args.counter else DEFAULT_COUNTERS
    allow_missing = set(args.allow_missing)

    base_doc = load_doc(args.baseline)
    cur_doc = load_doc(args.current)
    base_is_report = "swa_run_report" in base_doc
    cur_is_report = "swa_run_report" in cur_doc
    if base_is_report != cur_is_report:
        sys.exit("error: cannot compare a run report against a "
                 "benchmark file")
    if base_is_report:
        sys.exit(compare_reports(base_doc, cur_doc, args.threshold,
                                 allow_missing))

    base, base_ctx = index_benchmarks(base_doc)
    cur, cur_ctx = index_benchmarks(cur_doc)

    for label, ctx in (("baseline", base_ctx), ("current", cur_ctx)):
        swa = ctx.get("swa_build_type")
        if swa and swa != "release":
            print(f"warning: {label} was recorded from a {swa} build; "
                  "the comparison is not meaningful", file=sys.stderr)

    only_base = sorted(set(base) - set(cur))
    only_cur = sorted(set(cur) - set(base))
    regressions = []
    for k in only_base:
        allowed = (fmt(k) in allow_missing or k[1] in allow_missing)
        watched = [n for n in counters if base[k].get(n) is not None]
        if watched and not allowed:
            regressions.append(
                f"{fmt(k)}: benchmark with watched counter(s) "
                f"{', '.join(watched)} missing from current run "
                "(allowlist with --allow-missing)")
        else:
            print(f"note: {fmt(k)} only in baseline "
                  f"({'allowlisted' if allowed else 'retired'})")
    for k in only_cur:
        print(f"note: {fmt(k)} only in current (new)")

    compared = 0
    for key in sorted(set(base) & set(cur)):
        b, c = base[key], cur[key]
        compared += 1
        bt, ct = b.get("real_time"), c.get("real_time")
        if bt and ct and bt > 0:
            delta = (ct - bt) / bt
            if delta > args.threshold:
                regressions.append(
                    f"{fmt(key)}: real_time {bt:.3g} -> {ct:.3g} "
                    f"{b.get('time_unit', 'ns')} (+{delta:.1%})")
        for name in counters:
            bv, cv = b.get(name), c.get(name)
            if bv is not None and cv is None and name not in allow_missing:
                regressions.append(
                    f"{fmt(key)}: watched counter {name} missing from "
                    "current run (allowlist with --allow-missing)")
                continue
            if bv is None or cv is None or bv <= 0:
                continue
            delta = (bv - cv) / bv
            if delta > args.threshold:
                regressions.append(
                    f"{fmt(key)}: {name} {bv:.4g} -> {cv:.4g} "
                    f"(-{delta:.1%})")

    if compared == 0:
        sys.exit("error: no benchmarks in common between the two files")
    if regressions:
        print(f"{len(regressions)} regression(s) past "
              f"{args.threshold:.0%}:")
        for r in regressions:
            print(f"  {r}")
        sys.exit(1)
    print(f"clean: {compared} benchmarks compared, none regressed past "
          f"{args.threshold:.0%}")


if __name__ == "__main__":
    main()
