//===- bench/bench_determinism.cpp - E5: trace-equivalence check -----------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// The §3 determinism theorem is what licenses replacing model checking by
// a single simulated run. This bench (a) empirically confirms it by
// running randomized interleaving orders and asserting job-trace
// equivalence, and (b) measures the cost of the randomized engine versus
// the deterministic one (the price one would pay without the theorem is
// exploring many runs; even one randomized run is slower than the
// deterministic order).
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "gen/Workload.h"

#include "BenchSupport.h"

#include <benchmark/benchmark.h>

using namespace swa;

namespace {

cfg::Config benchConfig() {
  gen::IndustrialParams P;
  P.Modules = 2;
  P.CoresPerModule = 2;
  P.PartitionsPerCore = 2;
  P.Seed = 5;
  return gen::industrialConfig(P);
}

} // namespace

static void BM_DeterministicRun(benchmark::State &State) {
  cfg::Config Config = benchConfig();
  for (auto _ : State) {
    Result<analysis::AnalyzeOutcome> Out =
        analysis::analyzeConfiguration(Config);
    if (!Out.ok()) {
      State.SkipWithError(Out.error().message().c_str());
      return;
    }
    benchmark::DoNotOptimize(Out->Analysis.TotalJobs);
  }
  State.counters["jobs"] = static_cast<double>(Config.jobCount());
}
BENCHMARK(BM_DeterministicRun)->Unit(benchmark::kMillisecond);

static void BM_RandomizedRunAndEquivalence(benchmark::State &State) {
  cfg::Config Config = benchConfig();
  Result<analysis::AnalyzeOutcome> Ref =
      analysis::analyzeConfiguration(Config);
  if (!Ref.ok()) {
    State.SkipWithError(Ref.error().message().c_str());
    return;
  }
  uint64_t Seed = 1;
  uint64_t EquivalentRuns = 0;
  for (auto _ : State) {
    Rng R(Seed++);
    nsa::SimOptions Opts;
    Opts.RandomOrder = &R;
    Result<analysis::AnalyzeOutcome> Out =
        analysis::analyzeConfiguration(Config, Opts);
    if (!Out.ok()) {
      State.SkipWithError(Out.error().message().c_str());
      return;
    }
    if (!analysis::jobTracesEquivalent(Ref->Analysis, Out->Analysis)) {
      State.SkipWithError("trace equivalence violated!");
      return;
    }
    ++EquivalentRuns;
  }
  State.counters["equivalent_runs"] = static_cast<double>(EquivalentRuns);
}
BENCHMARK(BM_RandomizedRunAndEquivalence)->Unit(benchmark::kMillisecond);

SWA_BENCH_MAIN();
