//===- examples/difftest_campaign.cpp - Differential fuzzing CLI -----------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// Runs a seeded differential-testing campaign: adversarial configurations
// through every applicable oracle pair, with the online trace-invariant
// checker inside every simulator run and mutated XML fed to the parser.
// On a mismatch the configuration is delta-debugged to a 1-minimal
// reproducer and written as a bundle that examples/replay re-executes.
//
//   $ ./difftest_campaign [--seed N] [--configs N] [--budget-ms N]
//                         [--no-mc] [--out DIR]
//                         [--trace-out FILE] [--report-out FILE]
//
// --trace-out records one span per campaign configuration plus the
// VM/interpreter runs inside each oracle pass and writes a
// chrome://tracing (Perfetto) timeline; --report-out writes a
// machine-readable obs::RunReport JSON of the campaign totals. Neither
// changes which configurations run or what the oracles compare.
//
// Exit status: 0 when the campaign is clean, 1 on any oracle mismatch or
// usage error.
//
//===----------------------------------------------------------------------===//

#include "configio/ConfigXml.h"
#include "difftest/Campaign.h"
#include "difftest/Reproducer.h"
#include "difftest/Shrink.h"
#include "obs/Metrics.h"
#include "obs/RunReport.h"
#include "obs/Span.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

using namespace swa;

int main(int argc, char **argv) {
  difftest::CampaignOptions Options;
  std::string OutDir = ".";
  std::string TracePath, ReportPath;
  for (int I = 1; I < argc; ++I) {
    auto NextArg = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", Flag);
        std::exit(1);
      }
      return argv[++I];
    };
    if (std::strcmp(argv[I], "--seed") == 0)
      Options.Seed = std::strtoull(NextArg("--seed"), nullptr, 10);
    else if (std::strcmp(argv[I], "--configs") == 0)
      Options.NumConfigs =
          static_cast<int>(std::strtol(NextArg("--configs"), nullptr, 10));
    else if (std::strcmp(argv[I], "--budget-ms") == 0)
      Options.Oracle.SimBudgetMs =
          std::strtoll(NextArg("--budget-ms"), nullptr, 10);
    else if (std::strcmp(argv[I], "--no-mc") == 0)
      Options.Oracle.EnableMc = false;
    else if (std::strcmp(argv[I], "--out") == 0)
      OutDir = NextArg("--out");
    else if (std::strcmp(argv[I], "--trace-out") == 0)
      TracePath = NextArg("--trace-out");
    else if (std::strcmp(argv[I], "--report-out") == 0)
      ReportPath = NextArg("--report-out");
    else {
      std::fprintf(stderr,
                   "usage: difftest_campaign [--seed N] [--configs N] "
                   "[--budget-ms N] [--no-mc] [--out DIR] "
                   "[--trace-out FILE] [--report-out FILE]\n");
      return 1;
    }
  }

  if (!TracePath.empty() || !ReportPath.empty())
    obs::setEnabled(true);
  if (!TracePath.empty())
    obs::setSpansEnabled(true);

  auto T0 = std::chrono::steady_clock::now();
  difftest::CampaignResult Res = difftest::runCampaign(Options);
  double ElapsedSec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  std::printf("campaign: seed=%llu configs=%d run=%d rejected=%d "
              "skipped=%d oracle-pairs=%d xml-docs-fuzzed=%d "
              "mismatches=%zu\n",
              static_cast<unsigned long long>(Options.Seed),
              Options.NumConfigs, Res.ConfigsRun, Res.RejectedConfigs,
              Res.SkippedConfigs, Res.OraclePairsRun, Res.XmlDocsFuzzed,
              Res.Mismatches.size());

  if (!TracePath.empty()) {
    std::ofstream OS(TracePath);
    if (!OS) {
      std::fprintf(stderr, "error: cannot open '%s'\n", TracePath.c_str());
      return 1;
    }
    obs::writeChromeTrace(OS);
    std::printf("trace: %zu spans -> %s (load in chrome://tracing or "
                "ui.perfetto.dev)\n",
                obs::spanCount(), TracePath.c_str());
  }
  if (!ReportPath.empty()) {
    obs::RunReport Report("difftest_campaign");
    Report.addCount("configs.requested",
                    static_cast<uint64_t>(Options.NumConfigs));
    Report.addCount("configs.run", static_cast<uint64_t>(Res.ConfigsRun));
    Report.addCount("configs.rejected",
                    static_cast<uint64_t>(Res.RejectedConfigs));
    Report.addCount("configs.skipped",
                    static_cast<uint64_t>(Res.SkippedConfigs));
    Report.addCount("oracle.pairs_run",
                    static_cast<uint64_t>(Res.OraclePairsRun));
    Report.addCount("xml.docs_fuzzed",
                    static_cast<uint64_t>(Res.XmlDocsFuzzed));
    Report.addCount("mismatches",
                    static_cast<uint64_t>(Res.Mismatches.size()));
    if (ElapsedSec > 0)
      Report.addStat("configs_per_sec",
                     static_cast<double>(Res.ConfigsRun) / ElapsedSec);
    std::string Err;
    if (!Report.writeFile(ReportPath, Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    std::printf("report: %s\n", ReportPath.c_str());
  }

  if (Res.clean())
    return 0;

  // Shrink and bundle every mismatch (typically there is at most one).
  int BundleId = 0;
  for (const difftest::CampaignMismatch &M : Res.Mismatches) {
    std::printf("mismatch #%d: config %d (seed %llu) pair=%s\n"
                "  expected: %s\n  actual:   %s\n  detail:   %s\n",
                BundleId, M.ConfigIndex,
                static_cast<unsigned long long>(M.ConfigSeed),
                difftest::oraclePairName(M.Finding.Pair),
                M.Finding.Expected.c_str(), M.Finding.Actual.c_str(),
                M.Finding.Detail.c_str());

    Result<cfg::Config> Parsed = configio::parseConfigXml(M.ConfigXml);
    if (!Parsed.ok())
      continue;
    difftest::OraclePair Pair = M.Finding.Pair;
    auto Reproduces = [&](const cfg::Config &Candidate) {
      difftest::OracleReport Rep =
          difftest::runOracles(Candidate, Options.Oracle);
      for (const difftest::Discrepancy &D : Rep.Mismatches)
        if (D.Pair == Pair)
          return true;
      return false;
    };
    difftest::Reproducer Bundle;
    Bundle.Config = Reproduces(*Parsed)
                        ? difftest::shrinkConfig(*Parsed, Reproduces)
                        : *Parsed;
    Bundle.Seed = M.ConfigSeed;
    Bundle.Pair = Pair;
    Bundle.Expected = M.Finding.Expected;
    Bundle.Actual = M.Finding.Actual;
    Bundle.Detail = M.Finding.Detail;
    // Shrinking can change the verdict strings (e.g. a different state
    // count); re-record the pair the *shrunk* configuration produces so
    // examples/replay matches it bit-for-bit.
    difftest::OracleReport Shrunk =
        difftest::runOracles(Bundle.Config, Options.Oracle);
    for (const difftest::Discrepancy &D : Shrunk.Mismatches) {
      if (D.Pair != Pair)
        continue;
      Bundle.Expected = D.Expected;
      Bundle.Actual = D.Actual;
      Bundle.Detail = D.Detail;
      break;
    }

    std::string Path =
        OutDir + "/repro-" + std::to_string(BundleId) + ".xml";
    std::ofstream Out(Path);
    Out << difftest::writeReproducerXml(Bundle);
    std::printf("  reproducer written to %s (replay with "
                "examples/replay)\n",
                Path.c_str());
    ++BundleId;
  }
  return 1;
}
