//===- examples/difftest_campaign.cpp - Differential fuzzing CLI -----------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// Runs a seeded differential-testing campaign: adversarial configurations
// through every applicable oracle pair, with the online trace-invariant
// checker inside every simulator run and mutated XML fed to the parser.
// On a mismatch the configuration is delta-debugged to a 1-minimal
// reproducer and written as a bundle that examples/replay re-executes.
//
//   $ ./difftest_campaign [--seed N] [--configs N] [--budget-ms N]
//                         [--no-mc] [--out DIR]
//
// Exit status: 0 when the campaign is clean, 1 on any oracle mismatch or
// usage error.
//
//===----------------------------------------------------------------------===//

#include "configio/ConfigXml.h"
#include "difftest/Campaign.h"
#include "difftest/Reproducer.h"
#include "difftest/Shrink.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

using namespace swa;

int main(int argc, char **argv) {
  difftest::CampaignOptions Options;
  std::string OutDir = ".";
  for (int I = 1; I < argc; ++I) {
    auto NextArg = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", Flag);
        std::exit(1);
      }
      return argv[++I];
    };
    if (std::strcmp(argv[I], "--seed") == 0)
      Options.Seed = std::strtoull(NextArg("--seed"), nullptr, 10);
    else if (std::strcmp(argv[I], "--configs") == 0)
      Options.NumConfigs =
          static_cast<int>(std::strtol(NextArg("--configs"), nullptr, 10));
    else if (std::strcmp(argv[I], "--budget-ms") == 0)
      Options.Oracle.SimBudgetMs =
          std::strtoll(NextArg("--budget-ms"), nullptr, 10);
    else if (std::strcmp(argv[I], "--no-mc") == 0)
      Options.Oracle.EnableMc = false;
    else if (std::strcmp(argv[I], "--out") == 0)
      OutDir = NextArg("--out");
    else {
      std::fprintf(stderr,
                   "usage: difftest_campaign [--seed N] [--configs N] "
                   "[--budget-ms N] [--no-mc] [--out DIR]\n");
      return 1;
    }
  }

  difftest::CampaignResult Res = difftest::runCampaign(Options);
  std::printf("campaign: seed=%llu configs=%d run=%d rejected=%d "
              "skipped=%d oracle-pairs=%d xml-docs-fuzzed=%d "
              "mismatches=%zu\n",
              static_cast<unsigned long long>(Options.Seed),
              Options.NumConfigs, Res.ConfigsRun, Res.RejectedConfigs,
              Res.SkippedConfigs, Res.OraclePairsRun, Res.XmlDocsFuzzed,
              Res.Mismatches.size());
  if (Res.clean())
    return 0;

  // Shrink and bundle every mismatch (typically there is at most one).
  int BundleId = 0;
  for (const difftest::CampaignMismatch &M : Res.Mismatches) {
    std::printf("mismatch #%d: config %d (seed %llu) pair=%s\n"
                "  expected: %s\n  actual:   %s\n  detail:   %s\n",
                BundleId, M.ConfigIndex,
                static_cast<unsigned long long>(M.ConfigSeed),
                difftest::oraclePairName(M.Finding.Pair),
                M.Finding.Expected.c_str(), M.Finding.Actual.c_str(),
                M.Finding.Detail.c_str());

    Result<cfg::Config> Parsed = configio::parseConfigXml(M.ConfigXml);
    if (!Parsed.ok())
      continue;
    difftest::OraclePair Pair = M.Finding.Pair;
    auto Reproduces = [&](const cfg::Config &Candidate) {
      difftest::OracleReport Rep =
          difftest::runOracles(Candidate, Options.Oracle);
      for (const difftest::Discrepancy &D : Rep.Mismatches)
        if (D.Pair == Pair)
          return true;
      return false;
    };
    difftest::Reproducer Bundle;
    Bundle.Config = Reproduces(*Parsed)
                        ? difftest::shrinkConfig(*Parsed, Reproduces)
                        : *Parsed;
    Bundle.Seed = M.ConfigSeed;
    Bundle.Pair = Pair;
    Bundle.Expected = M.Finding.Expected;
    Bundle.Actual = M.Finding.Actual;
    Bundle.Detail = M.Finding.Detail;
    // Shrinking can change the verdict strings (e.g. a different state
    // count); re-record the pair the *shrunk* configuration produces so
    // examples/replay matches it bit-for-bit.
    difftest::OracleReport Shrunk =
        difftest::runOracles(Bundle.Config, Options.Oracle);
    for (const difftest::Discrepancy &D : Shrunk.Mismatches) {
      if (D.Pair != Pair)
        continue;
      Bundle.Expected = D.Expected;
      Bundle.Actual = D.Actual;
      Bundle.Detail = D.Detail;
      break;
    }

    std::string Path =
        OutDir + "/repro-" + std::to_string(BundleId) + ".xml";
    std::ofstream Out(Path);
    Out << difftest::writeReproducerXml(Bundle);
    std::printf("  reproducer written to %s (replay with "
                "examples/replay)\n",
                Path.c_str());
    ++BundleId;
  }
  return 1;
}
