//===- examples/verify_components.cpp - Observer verification demo ---------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// Runs the §3 observer suite over the component library: every
// ARINC-653-derived requirement is checked by exhaustively exploring the
// component against a nondeterministic driver environment; the table shows
// the verdicts and state-space sizes. Also demonstrates that the observers
// have teeth by running the deliberately broken scheduler.
//
//   $ ./verify_components [ticks]
//
//===----------------------------------------------------------------------===//

#include "mc/ModelChecker.h"
#include "verify/Observers.h"

#include <cstdio>
#include <cstdlib>

using namespace swa;

int main(int argc, char **argv) {
  int Ticks = argc > 1 ? std::atoi(argv[1]) : 5;

  Result<std::vector<verify::VerificationOutcome>> Suite =
      verify::verifyComponentLibrary(Ticks);
  if (!Suite.ok()) {
    std::fprintf(stderr, "error: %s\n", Suite.error().message().c_str());
    return 1;
  }

  std::printf("%-10s %-45s %-8s %12s %14s\n", "req", "description",
              "verdict", "states", "transitions");
  bool AllHold = true;
  for (const verify::VerificationOutcome &O : *Suite) {
    std::printf("%-10s %-45s %-8s %12llu %14llu\n", O.Id.c_str(),
                O.Description.c_str(), O.Holds ? "HOLDS" : "VIOLATED",
                static_cast<unsigned long long>(O.States),
                static_cast<unsigned long long>(O.Transitions));
    AllHold = AllHold && O.Holds;
  }

  // Negative control: a scheduler that dispatches without preempting must
  // be caught by the single-execution observer.
  Result<verify::HarnessRun> Broken = verify::verifyBrokenTsIsCaught(Ticks);
  if (!Broken.ok()) {
    std::fprintf(stderr, "error: %s\n", Broken.error().message().c_str());
    return 1;
  }
  std::printf("\nnegative control (broken FPPS): %s after %llu states\n",
              Broken->Holds ? "NOT caught (problem!)" : "caught",
              static_cast<unsigned long long>(Broken->Mc.StatesExplored));
  if (!Broken->Holds && !Broken->Mc.Witness.empty()) {
    std::printf("counterexample (%zu steps):\n",
                Broken->Mc.Witness.size());
    for (const mc::WitnessStep &W : Broken->Mc.Witness)
      std::printf("  t=%-3lld %s\n", static_cast<long long>(W.Time),
                  W.Action.c_str());
  }

  return AllHold && !Broken->Holds ? 0 : 2;
}
