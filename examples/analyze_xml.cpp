//===- examples/analyze_xml.cpp - Analyze a configuration XML file ---------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// The command-line face of the toolchain in Fig. 3 of the paper: reads a
// system configuration from an XML file (the format the scheduling tool
// emits), runs the model, and prints the verdict, report and Gantt chart.
// Exit status: 0 schedulable, 2 unschedulable, 1 error.
//
//   $ ./analyze_xml path/to/config.xml [--gantt] [--trace]
//
// With no argument, analyzes a built-in demo document (also handy as a
// format reference).
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "analysis/Report.h"
#include "configio/ConfigXml.h"
#include "core/SystemTrace.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace swa;

static const char *DemoXml = R"XML(<?xml version="1.0"?>
<configuration name="xml-demo" coreTypes="1">
  <core name="m0c0" module="0" type="0"/>
  <core name="m1c0" module="1" type="0"/>
  <partition name="control" scheduler="FPPS" core="m0c0">
    <task name="loop" priority="2" period="25" deadline="20" wcet="6"/>
    <task name="mon" priority="1" period="50" deadline="50" wcet="8"/>
    <window start="0" end="25"/>
    <window start="25" end="50"/>
  </partition>
  <partition name="io" scheduler="EDF" core="m1c0">
    <task name="tx" priority="1" period="25" deadline="25" wcet="5"/>
    <window start="0" end="50"/>
  </partition>
  <message sender="control/loop" receiver="io/tx" memDelay="1"
           netDelay="4"/>
</configuration>
)XML";

int main(int argc, char **argv) {
  std::string Source = DemoXml;
  bool ShowGantt = false;
  bool ShowTrace = false;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--gantt") == 0) {
      ShowGantt = true;
    } else if (std::strcmp(argv[I], "--trace") == 0) {
      ShowTrace = true;
    } else {
      std::ifstream In(argv[I]);
      if (!In) {
        std::fprintf(stderr, "error: cannot open '%s'\n", argv[I]);
        return 1;
      }
      std::ostringstream Buf;
      Buf << In.rdbuf();
      Source = Buf.str();
    }
  }

  Result<cfg::Config> Config = configio::parseConfigXml(Source);
  if (!Config.ok()) {
    std::fprintf(stderr, "error: %s\n", Config.error().message().c_str());
    return 1;
  }

  Result<analysis::AnalyzeOutcome> Out =
      analysis::analyzeConfiguration(*Config);
  if (!Out.ok()) {
    std::fprintf(stderr, "error: %s\n", Out.error().message().c_str());
    return 1;
  }

  std::printf("%s\n",
              analysis::renderReport(*Config, Out->Analysis).c_str());
  if (ShowGantt || argc <= 1)
    std::printf("gantt:\n%s\n",
                analysis::renderGantt(*Config, Out->Analysis).c_str());
  if (ShowTrace) {
    std::printf("system trace:\n");
    for (const core::SysEvent &E : Out->Trace)
      std::printf("  t=%-6lld %-6s task %d\n",
                  static_cast<long long>(E.Time),
                  core::sysEventTypeName(E.Type), E.TaskGid);
  }
  return Out->Analysis.Schedulable ? 0 : 2;
}
