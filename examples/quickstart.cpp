//===- examples/quickstart.cpp - Minimal end-to-end walkthrough ------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// Builds a two-task IMA configuration in code, runs the stopwatch-automata
// model over one hyperperiod, and prints the verdict, the per-job
// execution intervals and an ASCII Gantt chart.
//
//   $ ./quickstart
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "analysis/Report.h"

#include <cstdio>

using namespace swa;

int main() {
  // One module, one core, one FPPS partition with two periodic tasks.
  cfg::Config Config;
  Config.Name = "quickstart";
  Config.NumCoreTypes = 1;
  Config.Cores.push_back({"m0c0", /*Module=*/0, /*CoreType=*/0});

  cfg::Partition P;
  P.Name = "p0";
  P.Scheduler = cfg::SchedulerKind::FPPS;
  P.Core = 0;
  P.Windows.push_back({0, 20}); // Full-hyperperiod window.
  P.Tasks.push_back({"control", /*Priority=*/2, /*Wcet=*/{3},
                     /*Period=*/10, /*Deadline=*/10});
  P.Tasks.push_back({"logging", /*Priority=*/1, /*Wcet=*/{5},
                     /*Period=*/20, /*Deadline=*/20});
  Config.Partitions.push_back(std::move(P));

  // Algorithm 1 + one simulated run + the schedulability criterion.
  Result<analysis::AnalyzeOutcome> Out =
      analysis::analyzeConfiguration(Config);
  if (!Out.ok()) {
    std::fprintf(stderr, "error: %s\n", Out.error().message().c_str());
    return 1;
  }

  std::printf("%s\n", analysis::renderReport(Config, Out->Analysis).c_str());
  std::printf("gantt (one column per tick):\n%s\n",
              analysis::renderGantt(Config, Out->Analysis).c_str());

  std::printf("job execution intervals:\n");
  for (const analysis::JobStats &J : Out->Analysis.Jobs) {
    const cfg::Task &T = Config.taskOf(Config.taskRefOf(J.TaskGid));
    std::printf("  %-8s job %d: ", T.Name.c_str(), J.JobIndex);
    for (const analysis::ExecInterval &I : J.Intervals)
      std::printf("[%lld,%lld) ", static_cast<long long>(I.Start),
                  static_cast<long long>(I.End));
    std::printf("response=%lld\n",
                static_cast<long long>(J.responseTime()));
  }

  std::printf("\nNSA run: %s\n", Out->Sim.summary().c_str());
  return Out->Analysis.Schedulable ? 0 : 2;
}
