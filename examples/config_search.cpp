//===- examples/config_search.cpp - Scheduling-tool integration demo -------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// Reproduces the §4 integration scenario: a scheduling tool explores
// candidate configurations (bindings + window layouts) for a task set and
// uses the stopwatch-automata model as its schedulability oracle.
//
//   $ ./config_search [seed] [--workers N] [--budget-ms MS]
//                     [--no-cache] [--no-early-exit] [--no-decompose]
//                     [--no-component-cache] [--no-incremental]
//                     [--checkpoint FILE] [--checkpoint-every-ms MS]
//                     [--resume] [--trace-out FILE] [--report-out FILE]
//
// --workers evaluates candidate batches on N threads; the result is
// byte-identical for every N. --budget-ms caps each candidate's
// simulation wall-clock time: a candidate that exceeds it is logged as
// skipped and the search keeps going. The --no-* flags switch off the
// acceleration layers (verdict memoization, first-miss early exit,
// per-core compositional evaluation, component-verdict memoization, and
// — via --no-incremental — both mutation-driven dirty tracking and NSA
// instance reuse); the verdict stream is identical either way, only the
// cost changes. --trace-out records per-candidate /
// per-component spans and writes a chrome://tracing (Perfetto) timeline;
// --report-out writes a machine-readable obs::RunReport JSON. Both turn
// observability on; neither changes the search result.
//
// --checkpoint makes the search durable: it writes an atomic snapshot of
// the verdict cache and loop state to FILE at round boundaries (every
// round, or throttled by --checkpoint-every-ms) and on exit. --resume
// loads FILE first and continues mid-stream: a run killed at any point
// and resumed this way prints the same verdicts the uninterrupted run
// prints. A corrupt, truncated or foreign snapshot is rejected with a
// typed error and the search starts cold — never a wrong answer.
//
//===----------------------------------------------------------------------===//

#include "analysis/Report.h"
#include "gen/Workload.h"
#include "obs/Metrics.h"
#include "obs/RunReport.h"
#include "obs/Span.h"
#include "schedtool/ConfigSearch.h"
#include "schedtool/Snapshot.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

using namespace swa;

int main(int argc, char **argv) {
  uint64_t Seed = 7;
  int Workers = 1;
  int64_t BudgetMs = -1;
  bool UseCache = true, UseEarlyExit = true, UseDecompose = true;
  bool UseComponentCache = true, UseIncremental = true;
  const char *TraceOut = nullptr, *ReportOut = nullptr;
  const char *CheckpointPath = nullptr;
  int64_t CheckpointEveryMs = 0;
  bool Resume = false;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--workers") == 0 && I + 1 < argc)
      Workers = std::atoi(argv[++I]);
    else if (std::strcmp(argv[I], "--budget-ms") == 0 && I + 1 < argc)
      BudgetMs = std::strtoll(argv[++I], nullptr, 10);
    else if (std::strcmp(argv[I], "--no-cache") == 0)
      UseCache = false;
    else if (std::strcmp(argv[I], "--no-early-exit") == 0)
      UseEarlyExit = false;
    else if (std::strcmp(argv[I], "--no-decompose") == 0)
      UseDecompose = false;
    else if (std::strcmp(argv[I], "--no-component-cache") == 0)
      UseComponentCache = false;
    else if (std::strcmp(argv[I], "--no-incremental") == 0)
      UseIncremental = false;
    else if (std::strcmp(argv[I], "--checkpoint") == 0 && I + 1 < argc)
      CheckpointPath = argv[++I];
    else if (std::strcmp(argv[I], "--checkpoint-every-ms") == 0 &&
             I + 1 < argc)
      CheckpointEveryMs = std::strtoll(argv[++I], nullptr, 10);
    else if (std::strcmp(argv[I], "--resume") == 0)
      Resume = true;
    else if (std::strcmp(argv[I], "--trace-out") == 0 && I + 1 < argc)
      TraceOut = argv[++I];
    else if (std::strcmp(argv[I], "--report-out") == 0 && I + 1 < argc)
      ReportOut = argv[++I];
    else
      Seed = std::strtoull(argv[I], nullptr, 10);
  }

  if (TraceOut || ReportOut)
    obs::setEnabled(true);
  if (TraceOut)
    obs::setSpansEnabled(true);

  // A generated task set whose bindings and windows we discard: the search
  // must find a feasible layout on its own.
  gen::IndustrialParams Params;
  Params.Modules = 2;
  Params.CoresPerModule = 2;
  Params.PartitionsPerCore = 2;
  Params.CoreUtilization = 0.55;
  Params.Seed = Seed;
  cfg::Config Base = gen::industrialConfig(Params);
  for (cfg::Partition &P : Base.Partitions) {
    P.Core = -1;
    P.Windows.clear();
  }

  std::printf("problem: %zu partitions, %d tasks, %zu messages on %zu "
              "cores\n",
              Base.Partitions.size(), Base.numTasks(),
              Base.Messages.size(), Base.Cores.size());

  schedtool::SearchProblem Problem;
  Problem.Base = Base;
  Problem.Seed = Seed;
  Problem.MaxIterations = 40;
  Problem.Workers = Workers;
  Problem.CandidateBudgetMs = BudgetMs;
  Problem.UseVerdictCache = UseCache;
  Problem.UseEarlyExit = UseEarlyExit;
  Problem.UseDecomposition = UseDecompose;
  Problem.UseComponentCache = UseComponentCache;
  Problem.UseDirtyTracking = UseIncremental;
  Problem.UseInstanceReuse = UseIncremental;

  // Durable search: load the previous checkpoint when asked, and degrade
  // to a cold start — with the rejection reason — when the file is
  // corrupt, truncated, version-skewed or missing. A snapshot written by
  // a *different* search (other seed/batch/base) is only detectable by
  // the search itself, so that case retries cold below.
  schedtool::SnapshotStats CkptStats;
  schedtool::Snapshot Loaded;
  if (Resume && CheckpointPath) {
    Result<schedtool::Snapshot> S =
        schedtool::loadSnapshot(CheckpointPath, &CkptStats);
    if (S.ok()) {
      Loaded = S.takeValue();
      Problem.Resume = &Loaded;
      std::printf("resume: loaded %s (%zu config / %zu component entries, "
                  "%s search state)\n",
                  CheckpointPath, Loaded.ConfigEntries.size(),
                  Loaded.ComponentEntries.size(),
                  Loaded.HasSearchState ? "with" : "no");
    } else {
      std::fprintf(stderr, "resume: %s [%s] -- starting cold\n",
                   S.error().message().c_str(),
                   errorCodeName(S.error().code()));
    }
  }
  if (CheckpointPath) {
    Problem.CheckpointPath = CheckpointPath;
    Problem.CheckpointEveryMs = CheckpointEveryMs;
    Problem.CkptStats = &CkptStats;
  }

  auto T0 = std::chrono::steady_clock::now();
  Result<schedtool::SearchResult> Res =
      schedtool::searchConfiguration(Problem);
  if (!Res.ok() && Res.error().code() == ErrorCode::SnapshotMismatch) {
    std::fprintf(stderr, "resume: %s [%s] -- rerunning cold\n",
                 Res.error().message().c_str(),
                 errorCodeName(Res.error().code()));
    Problem.Resume = nullptr;
    T0 = std::chrono::steady_clock::now();
    Res = schedtool::searchConfiguration(Problem);
  }
  double ElapsedSec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  if (!Res.ok()) {
    std::fprintf(stderr, "error: %s\n", Res.error().message().c_str());
    return 1;
  }

  for (const std::string &Line : Res->Log)
    std::printf("  %s\n", Line.c_str());
  std::printf("\nevaluated %d configurations (%d skipped by budget); %s\n",
              Res->ConfigurationsEvaluated, Res->CandidatesSkipped,
              Res->Found ? "found a schedulable one"
                         : "no schedulable configuration found");
  if (UseCache)
    std::printf("cache: %d hits / %d misses (%d symmetry folds, %d "
                "intra-batch duplicates)\n",
                Res->CacheHits, Res->CacheMisses, Res->SymmetryFolds,
                Res->DuplicateCandidates);
  if (UseDecompose)
    std::printf("decomposition: %d candidates split into %d components "
                "(%d monolithic simulations)\n",
                Res->DecomposedCandidates, Res->ComponentsSimulated,
                Res->SimulationsRun);
  if (UseDecompose && UseComponentCache) {
    int Lookups = Res->ComponentCacheHits + Res->ComponentCacheMisses;
    std::printf("component cache: %d hits / %d misses (%.0f%% hit rate, "
                "%d unique sims)\n",
                Res->ComponentCacheHits, Res->ComponentCacheMisses,
                Lookups > 0 ? 100.0 * Res->ComponentCacheHits / Lookups
                            : 0.0,
                Res->ComponentsSimulated);
  }
  if (UseDecompose && UseIncremental) {
    int Planned = Res->DirtyComponents + Res->CleanComponentsReused;
    std::printf("incremental: %d dirty / %d clean components (%.0f%% "
                "dirty)\n",
                Res->DirtyComponents, Res->CleanComponentsReused,
                Planned > 0 ? 100.0 * Res->DirtyComponents / Planned
                            : 0.0);
  }
  if (CheckpointPath) {
    std::printf("checkpoint: %llu snapshots written (%llu bytes), %llu "
                "loaded (%llu bytes), %llu entries merged, %llu warm hits\n",
                static_cast<unsigned long long>(CkptStats.SnapshotsWritten),
                static_cast<unsigned long long>(CkptStats.BytesWritten),
                static_cast<unsigned long long>(CkptStats.SnapshotsLoaded),
                static_cast<unsigned long long>(CkptStats.BytesLoaded),
                static_cast<unsigned long long>(
                    CkptStats.ConfigEntriesMerged +
                    CkptStats.ComponentEntriesMerged),
                static_cast<unsigned long long>(CkptStats.SnapshotHits));
    if (CkptStats.WriteFailures > 0)
      std::fprintf(stderr,
                   "checkpoint: %llu write failures (last: %s) -- search "
                   "result unaffected\n",
                   static_cast<unsigned long long>(CkptStats.WriteFailures),
                   CkptStats.LastError.c_str());
  }

  if (TraceOut) {
    std::ofstream OS(TraceOut);
    if (!OS) {
      std::fprintf(stderr, "error: cannot write %s\n", TraceOut);
      return 1;
    }
    obs::writeChromeTrace(OS);
    std::printf("trace: %zu spans -> %s (load in chrome://tracing or "
                "ui.perfetto.dev)\n",
                obs::spanCount(), TraceOut);
  }
  if (ReportOut) {
    obs::RunReport Report("config_search");
    schedtool::fillSearchReport(Report, *Res, ElapsedSec);
    if (CheckpointPath)
      schedtool::fillSnapshotReport(Report, CkptStats);
    std::string Err;
    if (!Report.writeFile(ReportOut, Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    std::printf("report: %s\n", ReportOut);
  }

  if (Res->Found) {
    std::printf("\nchosen binding and windows:\n");
    for (size_t P = 0; P < Res->Best.Partitions.size(); ++P) {
      const cfg::Partition &Part = Res->Best.Partitions[P];
      std::printf("  %-10s -> core %s, windows:", Part.Name.c_str(),
                  Res->Best.Cores[static_cast<size_t>(Part.Core)]
                      .Name.c_str());
      for (const cfg::Window &W : Part.Windows)
        std::printf(" [%lld,%lld)", static_cast<long long>(W.Start),
                    static_cast<long long>(W.End));
      std::printf("\n");
    }
  }
  return Res->Found ? 0 : 2;
}
