//===- examples/config_search.cpp - Scheduling-tool integration demo -------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// Reproduces the §4 integration scenario: a scheduling tool explores
// candidate configurations (bindings + window layouts) for a task set and
// uses the stopwatch-automata model as its schedulability oracle.
//
//   $ ./config_search [seed] [--workers N] [--budget-ms MS]
//                     [--no-cache] [--no-early-exit] [--no-decompose]
//                     [--no-component-cache] [--no-incremental]
//                     [--checkpoint FILE] [--checkpoint-every-ms MS]
//                     [--resume] [--trace-out FILE] [--report-out FILE]
//                     [--strategy NAME]
//                     [--fleet N] [--portfolio S1,S2,..] [--fleet-dir DIR]
//                     [--fleet-threads N] [--fleet-fallback-ms MS]
//                     [--fleet-in-process]
//
// --workers evaluates candidate batches on N threads; the result is
// byte-identical for every N. --budget-ms caps each candidate's
// simulation wall-clock time: a candidate that exceeds it is logged as
// skipped and the search keeps going. The --no-* flags switch off the
// acceleration layers (verdict memoization, first-miss early exit,
// per-core compositional evaluation, component-verdict memoization, and
// — via --no-incremental — both mutation-driven dirty tracking and NSA
// instance reuse); the verdict stream is identical either way, only the
// cost changes. --trace-out records per-candidate /
// per-component spans and writes a chrome://tracing (Perfetto) timeline;
// --report-out writes a machine-readable obs::RunReport JSON. Both turn
// observability on; neither changes the search result.
//
// --checkpoint makes the search durable: it writes an atomic snapshot of
// the verdict cache and loop state to FILE at round boundaries (every
// round, or throttled by --checkpoint-every-ms) and on exit. --resume
// loads FILE first and continues mid-stream: a run killed at any point
// and resumed this way prints the same verdicts the uninterrupted run
// prints. A corrupt, truncated or foreign snapshot is rejected with a
// typed error and the search starts cold — never a wrong answer.
//
// --strategy picks the metaheuristic (local | annealing | genetic).
// --fleet N runs the search as a fleet of N sharded worker processes on
// a shared verdict exchange (--fleet-dir, default ./fleet_exchange):
// every worker replays the full deterministic loop but simulates only
// its share of each round's work items, adopting the rest from its
// peers — the printed result is byte-identical to the single-process
// run for any N. --portfolio races one worker per named strategy on the
// shared exchange instead and reports the first/best finisher.
// --fleet-threads sets each worker's thread count, --fleet-in-process
// runs workers as threads of this process instead of spawned processes
// (faster to start; no crash tolerance). In fleet mode workers
// checkpoint into the exchange directory and --resume continues an
// interrupted fleet. The hidden --fleet-worker/--fleet-shard flags are
// how the coordinator invokes this binary as a worker.
//
//===----------------------------------------------------------------------===//

#include "analysis/Report.h"
#include "gen/Workload.h"
#include "obs/Metrics.h"
#include "obs/RunReport.h"
#include "obs/Span.h"
#include "schedtool/ConfigSearch.h"
#include "schedtool/FleetSearch.h"
#include "schedtool/Snapshot.h"
#include "schedtool/Strategy.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace swa;

// The search's deliverable, shared by the solo and fleet paths: the
// schedulable binding + windows, or nothing when the search failed.
static void printChosen(const schedtool::SearchResult &Res) {
  if (!Res.Found)
    return;
  std::printf("\nchosen binding and windows:\n");
  for (size_t P = 0; P < Res.Best.Partitions.size(); ++P) {
    const cfg::Partition &Part = Res.Best.Partitions[P];
    std::printf("  %-10s -> core %s, windows:", Part.Name.c_str(),
                Res.Best.Cores[static_cast<size_t>(Part.Core)].Name.c_str());
    for (const cfg::Window &W : Part.Windows)
      std::printf(" [%lld,%lld)", static_cast<long long>(W.Start),
                  static_cast<long long>(W.End));
    std::printf("\n");
  }
}

int main(int argc, char **argv) {
  // Fleet-worker dispatch: when the coordinator spawned us, run the
  // assigned shard and nothing else (the manifest carries the problem).
  {
    const char *WorkerDir = nullptr;
    int WorkerShard = -1;
    for (int I = 1; I < argc; ++I) {
      if (std::strcmp(argv[I], "--fleet-worker") == 0 && I + 1 < argc)
        WorkerDir = argv[I + 1];
      else if (std::strcmp(argv[I], "--fleet-shard") == 0 && I + 1 < argc)
        WorkerShard = std::atoi(argv[I + 1]);
    }
    if (WorkerDir)
      return schedtool::runFleetWorker(WorkerDir, WorkerShard);
  }

  uint64_t Seed = 7;
  int Workers = 1;
  int64_t BudgetMs = -1;
  bool UseCache = true, UseEarlyExit = true, UseDecompose = true;
  bool UseComponentCache = true, UseIncremental = true;
  const char *TraceOut = nullptr, *ReportOut = nullptr;
  const char *CheckpointPath = nullptr;
  int64_t CheckpointEveryMs = 0;
  bool Resume = false;
  std::string StrategyName;
  int FleetN = 0;
  std::vector<std::string> Portfolio;
  const char *FleetDir = "fleet_exchange";
  int FleetThreads = 0;
  int64_t FleetFallbackMs = 2000;
  bool FleetInProcess = false;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--workers") == 0 && I + 1 < argc)
      Workers = std::atoi(argv[++I]);
    else if (std::strcmp(argv[I], "--budget-ms") == 0 && I + 1 < argc)
      BudgetMs = std::strtoll(argv[++I], nullptr, 10);
    else if (std::strcmp(argv[I], "--no-cache") == 0)
      UseCache = false;
    else if (std::strcmp(argv[I], "--no-early-exit") == 0)
      UseEarlyExit = false;
    else if (std::strcmp(argv[I], "--no-decompose") == 0)
      UseDecompose = false;
    else if (std::strcmp(argv[I], "--no-component-cache") == 0)
      UseComponentCache = false;
    else if (std::strcmp(argv[I], "--no-incremental") == 0)
      UseIncremental = false;
    else if (std::strcmp(argv[I], "--checkpoint") == 0 && I + 1 < argc)
      CheckpointPath = argv[++I];
    else if (std::strcmp(argv[I], "--checkpoint-every-ms") == 0 &&
             I + 1 < argc)
      CheckpointEveryMs = std::strtoll(argv[++I], nullptr, 10);
    else if (std::strcmp(argv[I], "--resume") == 0)
      Resume = true;
    else if (std::strcmp(argv[I], "--trace-out") == 0 && I + 1 < argc)
      TraceOut = argv[++I];
    else if (std::strcmp(argv[I], "--report-out") == 0 && I + 1 < argc)
      ReportOut = argv[++I];
    else if (std::strcmp(argv[I], "--strategy") == 0 && I + 1 < argc)
      StrategyName = argv[++I];
    else if (std::strcmp(argv[I], "--fleet") == 0 && I + 1 < argc)
      FleetN = std::atoi(argv[++I]);
    else if (std::strcmp(argv[I], "--portfolio") == 0 && I + 1 < argc) {
      std::string List = argv[++I];
      size_t Pos = 0;
      while (Pos <= List.size()) {
        size_t Comma = List.find(',', Pos);
        if (Comma == std::string::npos)
          Comma = List.size();
        if (Comma > Pos)
          Portfolio.push_back(List.substr(Pos, Comma - Pos));
        Pos = Comma + 1;
      }
    } else if (std::strcmp(argv[I], "--fleet-dir") == 0 && I + 1 < argc)
      FleetDir = argv[++I];
    else if (std::strcmp(argv[I], "--fleet-threads") == 0 && I + 1 < argc)
      FleetThreads = std::atoi(argv[++I]);
    else if (std::strcmp(argv[I], "--fleet-fallback-ms") == 0 && I + 1 < argc)
      FleetFallbackMs = std::strtoll(argv[++I], nullptr, 10);
    else if (std::strcmp(argv[I], "--fleet-in-process") == 0)
      FleetInProcess = true;
    else
      Seed = std::strtoull(argv[I], nullptr, 10);
  }

  if (TraceOut || ReportOut)
    obs::setEnabled(true);
  if (TraceOut)
    obs::setSpansEnabled(true);

  // A generated task set whose bindings and windows we discard: the search
  // must find a feasible layout on its own.
  gen::IndustrialParams Params;
  Params.Modules = 2;
  Params.CoresPerModule = 2;
  Params.PartitionsPerCore = 2;
  Params.CoreUtilization = 0.55;
  Params.Seed = Seed;
  cfg::Config Base = gen::industrialConfig(Params);
  for (cfg::Partition &P : Base.Partitions) {
    P.Core = -1;
    P.Windows.clear();
  }

  std::printf("problem: %zu partitions, %d tasks, %zu messages on %zu "
              "cores\n",
              Base.Partitions.size(), Base.numTasks(),
              Base.Messages.size(), Base.Cores.size());

  schedtool::SearchProblem Problem;
  Problem.Base = Base;
  Problem.Seed = Seed;
  Problem.MaxIterations = 40;
  Problem.Workers = Workers;
  Problem.CandidateBudgetMs = BudgetMs;
  Problem.UseVerdictCache = UseCache;
  Problem.UseEarlyExit = UseEarlyExit;
  Problem.UseDecomposition = UseDecompose;
  Problem.UseComponentCache = UseComponentCache;
  Problem.UseDirtyTracking = UseIncremental;
  Problem.UseInstanceReuse = UseIncremental;

  std::unique_ptr<schedtool::Strategy> Strat;
  if (!StrategyName.empty()) {
    Strat = schedtool::makeStrategy(StrategyName);
    if (!Strat) {
      std::fprintf(stderr, "error: unknown strategy '%s'\n",
                   StrategyName.c_str());
      return 1;
    }
    Problem.Strat = Strat.get();
  }

  if (FleetN > 1 || !Portfolio.empty()) {
    schedtool::FleetProblem FP;
    FP.Problem = Problem;
    if (FleetThreads > 0)
      FP.Problem.Workers = FleetThreads;
    FP.Shards = FleetN > 1 ? FleetN : static_cast<int>(Portfolio.size());
    FP.M = Portfolio.empty() ? schedtool::FleetProblem::Mode::Shard
                             : schedtool::FleetProblem::Mode::Portfolio;
    FP.Strategies = Portfolio;
    if (Portfolio.empty() && !StrategyName.empty())
      FP.Strategies.push_back(StrategyName);
    FP.ExchangeDir = FleetDir;
    FP.FallbackMs = FleetFallbackMs;
    FP.CheckpointEveryMs = CheckpointEveryMs;
    FP.Resume = Resume;
    if (!FleetInProcess)
      FP.WorkerCommand = {argv[0]};

    std::printf("fleet: %d %s shard(s), exchange dir %s, %s backend\n",
                FP.Shards,
                FP.M == schedtool::FleetProblem::Mode::Portfolio
                    ? "portfolio"
                    : "sharded",
                FP.ExchangeDir.c_str(),
                FleetInProcess ? "in-process" : "process");
    auto F0 = std::chrono::steady_clock::now();
    Result<schedtool::FleetResult> Fleet = schedtool::runFleetSearch(FP);
    double FleetSec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - F0)
            .count();
    if (!Fleet.ok()) {
      std::fprintf(stderr, "error: %s\n", Fleet.error().message().c_str());
      return 1;
    }
    for (size_t I = 0; I < Fleet->ShardResults.size(); ++I) {
      const schedtool::SearchResult &R = Fleet->ShardResults[I];
      std::printf("  shard %zu [%s]: %s after %d candidates\n", I,
                  Fleet->ShardStrategies[I].c_str(),
                  R.Found ? "found" : "not found",
                  R.ConfigurationsEvaluated);
    }
    if (Fleet->Restarts > 0)
      std::printf("fleet: %d worker restart(s)\n", Fleet->Restarts);
    const schedtool::SearchResult &R = Fleet->Res;
    std::printf("fleet: winner shard %d [%s]; evaluated %d configurations; "
                "%s (%.2fs)\n",
                Fleet->WinnerShard, Fleet->WinnerStrategy.c_str(),
                R.ConfigurationsEvaluated,
                R.Found ? "found a schedulable one"
                        : "no schedulable configuration found",
                FleetSec);
    if (ReportOut) {
      obs::RunReport Report("config_search_fleet");
      schedtool::fillSearchReport(Report, R, FleetSec);
      std::string Err;
      if (!Report.writeFile(ReportOut, Err)) {
        std::fprintf(stderr, "error: %s\n", Err.c_str());
        return 1;
      }
      std::printf("report: %s\n", ReportOut);
    }
    printChosen(R);
    return R.Found ? 0 : 2;
  }

  // Durable search: load the previous checkpoint when asked, and degrade
  // to a cold start — with the rejection reason — when the file is
  // corrupt, truncated, version-skewed or missing. A snapshot written by
  // a *different* search (other seed/batch/base) is only detectable by
  // the search itself, so that case retries cold below.
  schedtool::SnapshotStats CkptStats;
  schedtool::Snapshot Loaded;
  if (Resume && CheckpointPath) {
    Result<schedtool::Snapshot> S =
        schedtool::loadSnapshot(CheckpointPath, &CkptStats);
    if (S.ok()) {
      Loaded = S.takeValue();
      Problem.Resume = &Loaded;
      std::printf("resume: loaded %s (%zu config / %zu component entries, "
                  "%s search state)\n",
                  CheckpointPath, Loaded.ConfigEntries.size(),
                  Loaded.ComponentEntries.size(),
                  Loaded.HasSearchState ? "with" : "no");
    } else {
      std::fprintf(stderr, "resume: %s [%s] -- starting cold\n",
                   S.error().message().c_str(),
                   errorCodeName(S.error().code()));
    }
  }
  if (CheckpointPath) {
    Problem.CheckpointPath = CheckpointPath;
    Problem.CheckpointEveryMs = CheckpointEveryMs;
    Problem.CkptStats = &CkptStats;
  }

  auto T0 = std::chrono::steady_clock::now();
  Result<schedtool::SearchResult> Res =
      schedtool::searchConfiguration(Problem);
  if (!Res.ok() && Res.error().code() == ErrorCode::SnapshotMismatch) {
    std::fprintf(stderr, "resume: %s [%s] -- rerunning cold\n",
                 Res.error().message().c_str(),
                 errorCodeName(Res.error().code()));
    Problem.Resume = nullptr;
    T0 = std::chrono::steady_clock::now();
    Res = schedtool::searchConfiguration(Problem);
  }
  double ElapsedSec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  if (!Res.ok()) {
    std::fprintf(stderr, "error: %s\n", Res.error().message().c_str());
    return 1;
  }

  for (const std::string &Line : Res->Log)
    std::printf("  %s\n", Line.c_str());
  std::printf("\nevaluated %d configurations (%d skipped by budget); %s\n",
              Res->ConfigurationsEvaluated, Res->CandidatesSkipped,
              Res->Found ? "found a schedulable one"
                         : "no schedulable configuration found");
  if (UseCache)
    std::printf("cache: %d hits / %d misses (%d symmetry folds, %d "
                "intra-batch duplicates)\n",
                Res->CacheHits, Res->CacheMisses, Res->SymmetryFolds,
                Res->DuplicateCandidates);
  if (UseDecompose)
    std::printf("decomposition: %d candidates split into %d components "
                "(%d monolithic simulations)\n",
                Res->DecomposedCandidates, Res->ComponentsSimulated,
                Res->SimulationsRun);
  if (UseDecompose && UseComponentCache) {
    int Lookups = Res->ComponentCacheHits + Res->ComponentCacheMisses;
    std::printf("component cache: %d hits / %d misses (%.0f%% hit rate, "
                "%d unique sims)\n",
                Res->ComponentCacheHits, Res->ComponentCacheMisses,
                Lookups > 0 ? 100.0 * Res->ComponentCacheHits / Lookups
                            : 0.0,
                Res->ComponentsSimulated);
  }
  if (UseDecompose && UseIncremental) {
    int Planned = Res->DirtyComponents + Res->CleanComponentsReused;
    std::printf("incremental: %d dirty / %d clean components (%.0f%% "
                "dirty)\n",
                Res->DirtyComponents, Res->CleanComponentsReused,
                Planned > 0 ? 100.0 * Res->DirtyComponents / Planned
                            : 0.0);
  }
  if (CheckpointPath) {
    std::printf("checkpoint: %llu snapshots written (%llu bytes), %llu "
                "loaded (%llu bytes), %llu entries merged, %llu warm hits\n",
                static_cast<unsigned long long>(CkptStats.SnapshotsWritten),
                static_cast<unsigned long long>(CkptStats.BytesWritten),
                static_cast<unsigned long long>(CkptStats.SnapshotsLoaded),
                static_cast<unsigned long long>(CkptStats.BytesLoaded),
                static_cast<unsigned long long>(
                    CkptStats.ConfigEntriesMerged +
                    CkptStats.ComponentEntriesMerged),
                static_cast<unsigned long long>(CkptStats.SnapshotHits));
    if (CkptStats.WriteFailures > 0)
      std::fprintf(stderr,
                   "checkpoint: %llu write failures (last: %s) -- search "
                   "result unaffected\n",
                   static_cast<unsigned long long>(CkptStats.WriteFailures),
                   CkptStats.LastError.c_str());
  }

  if (TraceOut) {
    std::ofstream OS(TraceOut);
    if (!OS) {
      std::fprintf(stderr, "error: cannot write %s\n", TraceOut);
      return 1;
    }
    obs::writeChromeTrace(OS);
    std::printf("trace: %zu spans -> %s (load in chrome://tracing or "
                "ui.perfetto.dev)\n",
                obs::spanCount(), TraceOut);
  }
  if (ReportOut) {
    obs::RunReport Report("config_search");
    schedtool::fillSearchReport(Report, *Res, ElapsedSec);
    if (CheckpointPath)
      schedtool::fillSnapshotReport(Report, CkptStats);
    std::string Err;
    if (!Report.writeFile(ReportOut, Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    std::printf("report: %s\n", ReportOut);
  }

  printChosen(*Res);
  return Res->Found ? 0 : 2;
}
