//===- examples/avionics_case.cpp - A multi-module IMA case study ----------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// A hand-built avionics-flavoured configuration exercising every feature
// of the model at once: two modules with two cores each, partitions under
// FPPS / FPNPS / EDF, partition windows, and a sensor -> fusion -> actuator
// data-flow chain crossing the inter-module network. Prints the analysis
// report, the Gantt chart, data-latency figures, and round-trips the
// configuration through its XML form.
//
//   $ ./avionics_case
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "analysis/Report.h"
#include "analysis/Stats.h"
#include "configio/ConfigXml.h"
#include "net/Afdx.h"

#include <cstdio>

using namespace swa;

namespace {

cfg::Config buildAvionicsConfig() {
  cfg::Config C;
  C.Name = "avionics-demo";
  C.NumCoreTypes = 2; // Type 1 is a slower core: larger WCETs.
  C.Cores.push_back({"m0c0", 0, 0});
  C.Cores.push_back({"m0c1", 0, 1});
  C.Cores.push_back({"m1c0", 1, 0});
  C.Cores.push_back({"m1c1", 1, 1});

  // Sensor partition (module 0, fast core): FPPS, full utilization burst
  // at the start of each frame. Hyperperiod is 40 ticks (1 tick = 1 ms).
  {
    cfg::Partition P;
    P.Name = "sensors";
    P.Scheduler = cfg::SchedulerKind::FPPS;
    P.Core = 0;
    P.Windows.push_back({0, 8});
    P.Windows.push_back({20, 28});
    P.Tasks.push_back({"imu", 3, {2, 3}, 20, 10});
    P.Tasks.push_back({"airdata", 2, {3, 4}, 20, 20});
    P.Tasks.push_back({"gps", 1, {4, 5}, 40, 40});
    C.Partitions.push_back(std::move(P));
  }
  // Fusion partition (module 1): EDF.
  {
    cfg::Partition P;
    P.Name = "fusion";
    P.Scheduler = cfg::SchedulerKind::EDF;
    P.Core = 2;
    P.Windows.push_back({8, 18});
    P.Windows.push_back({28, 38});
    P.Tasks.push_back({"nav_filter", 1, {5, 7}, 20, 20});
    P.Tasks.push_back({"guidance", 1, {6, 8}, 40, 40});
    C.Partitions.push_back(std::move(P));
  }
  // Actuator partition (module 1, second core): FPNPS (drivers must not
  // be preempted mid-command).
  {
    cfg::Partition P;
    P.Name = "actuators";
    P.Scheduler = cfg::SchedulerKind::FPNPS;
    P.Core = 3;
    P.Windows.push_back({16, 20});
    P.Windows.push_back({36, 40});
    P.Tasks.push_back({"surface_cmd", 2, {2, 2}, 20, 20});
    P.Tasks.push_back({"telemetry", 1, {1, 1}, 40, 40});
    C.Partitions.push_back(std::move(P));
  }
  // Maintenance partition sharing core 0 with the sensors.
  {
    cfg::Partition P;
    P.Name = "maintenance";
    P.Scheduler = cfg::SchedulerKind::FPPS;
    P.Core = 0;
    P.Windows.push_back({8, 12});
    P.Tasks.push_back({"health", 1, {3, 4}, 40, 40});
    C.Partitions.push_back(std::move(P));
  }

  // Data-flow graph: imu -> nav_filter (cross-module: network delay),
  // nav_filter -> surface_cmd (intra-module: memory delay).
  cfg::Message M1;
  M1.Sender = {0, 0};   // sensors/imu
  M1.Receiver = {1, 0}; // fusion/nav_filter
  M1.MemDelay = 1;
  M1.NetDelay = 3;
  C.Messages.push_back(M1);
  cfg::Message M2;
  M2.Sender = {1, 0};   // fusion/nav_filter
  M2.Receiver = {2, 0}; // actuators/surface_cmd
  M2.MemDelay = 1;
  M2.NetDelay = 2;
  C.Messages.push_back(M2);
  return C;
}

} // namespace

int main() {
  cfg::Config Config = buildAvionicsConfig();

  // Derive the cross-module message delays from an AFDX-style network
  // instead of hand-picked constants: both modules hang off one switch
  // with 100 bytes/tick links; each message rides its own virtual link.
  net::Topology Net;
  int Es0 = Net.addNode("es-m0", net::NodeKind::EndSystem);
  int Es1 = Net.addNode("es-m1", net::NodeKind::EndSystem);
  int Sw = Net.addNode("sw0", net::NodeKind::Switch);
  (void)Sw;
  if (!Net.addLink(Es0, Sw, 100, 1).ok() ||
      !Net.addLink(Es1, Sw, 100, 1).ok()) {
    std::fprintf(stderr, "error: network setup failed\n");
    return 1;
  }
  Result<int> Vl1 = Net.routeVirtualLink(Es0, Es1, 120, 20); // imu data
  // The nav->cmd message is intra-module under this binding (its NetDelay
  // is unused), but computeMessageDelays wants a mapping per message, so
  // give it a VL too.
  Result<int> Vl2 = Net.routeVirtualLink(Es1, Es0, 80, 20);
  if (Vl1.ok() && Vl2.ok()) {
    // The second message is intra-module in this binding, so only the
    // first mapping matters; still compute both bounds for the report.
    if (Error E = net::computeMessageDelays(Config, Net, {*Vl1, *Vl2}))
      std::fprintf(stderr, "warning: %s\n", E.message().c_str());
    std::printf("network-derived worst-case delays: imu->nav_filter=%lld "
                "ticks (2 hops), nav->cmd intra-module (memory)\n\n",
                static_cast<long long>(Config.Messages[0].NetDelay));
  }

  Result<analysis::AnalyzeOutcome> Out =
      analysis::analyzeConfiguration(Config);
  if (!Out.ok()) {
    std::fprintf(stderr, "error: %s\n", Out.error().message().c_str());
    return 1;
  }

  std::printf("NSA run: %s\n\n", Out->Sim.summary().c_str());
  std::printf("%s\n", analysis::renderReport(Config, Out->Analysis).c_str());
  std::printf("gantt (one column per tick):\n%s\n",
              analysis::renderGantt(Config, Out->Analysis).c_str());

  // End-to-end data latency along the imu -> nav_filter -> surface_cmd
  // chain: from the imu job's release to the surface command's finish.
  std::printf("data-flow latency (per 20-tick frame):\n");
  int ImuGid = Config.globalTaskId({0, 0});
  int CmdGid = Config.globalTaskId({2, 0});
  for (const analysis::JobStats &J : Out->Analysis.Jobs) {
    if (J.TaskGid != CmdGid || !J.Completed)
      continue;
    std::printf("  frame %d: imu released at %lld, surface_cmd finished "
                "at %lld -> latency %lld ticks\n",
                J.JobIndex, static_cast<long long>(J.ReleaseTime),
                static_cast<long long>(J.FinishTime),
                static_cast<long long>(J.FinishTime - J.ReleaseTime));
  }
  (void)ImuGid;

  // Utilization and response-time statistics.
  analysis::TraceStats Stats =
      analysis::computeStats(Config, Out->Analysis);
  std::printf("%s\n", analysis::renderStats(Config, Stats).c_str());

  // The XML exchange format used between the scheduling tool and the
  // model (round-tripped to demonstrate the parser).
  std::string Xml = configio::writeConfigXml(Config);
  Result<cfg::Config> Back = configio::parseConfigXml(Xml);
  std::printf("\nXML round-trip: %s (%zu bytes)\n",
              Back.ok() ? "ok" : Back.error().message().c_str(),
              Xml.size());
  return Out->Analysis.Schedulable ? 0 : 2;
}
