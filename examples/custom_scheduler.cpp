//===- examples/custom_scheduler.cpp - User-defined component models -------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// The paper's library is extensible: "a user can develop, verify and add
// to the library own models". This example defines a round-robin task
// scheduler in the UPPAAL-like XML template format, compiles it through
// the translator, composes it with the standard Task automata in a small
// network, and simulates one hyperperiod to show the rotation.
//
//   $ ./custom_scheduler
//
//===----------------------------------------------------------------------===//

#include "configio/TemplateXml.h"
#include "models/ModelLibrary.h"
#include "nsa/Simulator.h"
#include "sa/NetworkBuilder.h"

#include <cstdio>

using namespace swa;

// A quantum-based round-robin scheduler: while awake, it runs each ready
// job for `q` ticks and moves on. It implements the same TS interface as
// the library schedulers (wakeup/sleep/ready/finished in, exec/preempt
// out), so the Task and CoreScheduler automata compose with it unchanged.
static const char *RoundRobinXml = R"XML(
<template name="RoundRobin">
  <parameter>int part, int off, int nt, int q</parameter>
  <declaration>
    clock slice;
    int cur = -1;          // Currently dispatched job, -1 when none.
    int last = off + nt - 1; // Ring position of the last dispatched task.
    int pick() {
      // First ready task strictly after `last` in ring order, else -1.
      for (int k = 1; k &lt;= nt; k++) {
        int cand = off + (last - off + k) % nt;
        if (is_ready[cand] == 1) return cand;
      }
      return -1;
    }
  </declaration>
  <location id="Asleep" initial="true"/>
  <!-- The quantum stopwatch only runs while a job is dispatched. -->
  <location id="Awake"
            invariant="slice &lt;= q &amp;&amp; slice' == (cur != -1 ? 1 : 0)"/>
  <location id="Decide" committed="true"/>
  <location id="Rotate" committed="true"/>
  <location id="Pausing" committed="true"/>
  <transition source="Asleep" target="Decide">
    <label kind="synchronisation">wakeup[part]?</label>
  </transition>
  <transition source="Asleep" target="Asleep">
    <label kind="synchronisation">ready[part]?</label>
  </transition>
  <transition source="Asleep" target="Asleep">
    <label kind="synchronisation">finished[part]?</label>
    <label kind="assignment">cur = -1</label>
  </transition>
  <transition source="Awake" target="Decide">
    <label kind="guard">cur == -1</label>
    <label kind="synchronisation">ready[part]?</label>
  </transition>
  <transition source="Awake" target="Awake">
    <label kind="guard">cur != -1</label>
    <label kind="synchronisation">ready[part]?</label>
  </transition>
  <transition source="Awake" target="Decide">
    <label kind="synchronisation">finished[part]?</label>
    <label kind="assignment">cur = -1</label>
  </transition>
  <transition source="Awake" target="Rotate">
    <label kind="guard">cur != -1 &amp;&amp; slice &gt;= q</label>
    <label kind="synchronisation">preempt[cur]!</label>
    <label kind="assignment">cur = -1</label>
  </transition>
  <transition source="Awake" target="Pausing">
    <label kind="synchronisation">sleep[part]?</label>
  </transition>
  <transition source="Decide" target="Awake">
    <label kind="guard">pick() == -1</label>
  </transition>
  <transition source="Decide" target="Awake">
    <label kind="guard">pick() != -1</label>
    <label kind="synchronisation">exec[pick()]!</label>
    <label kind="assignment">cur = pick(), last = cur, slice = 0</label>
  </transition>
  <transition source="Rotate" target="Awake">
    <label kind="guard">pick() == -1</label>
  </transition>
  <transition source="Rotate" target="Awake">
    <label kind="guard">pick() != -1</label>
    <label kind="synchronisation">exec[pick()]!</label>
    <label kind="assignment">cur = pick(), last = cur, slice = 0</label>
  </transition>
  <transition source="Decide" target="Decide">
    <label kind="synchronisation">ready[part]?</label>
  </transition>
  <transition source="Decide" target="Decide">
    <label kind="synchronisation">finished[part]?</label>
  </transition>
  <transition source="Rotate" target="Rotate">
    <label kind="synchronisation">ready[part]?</label>
  </transition>
  <transition source="Rotate" target="Rotate">
    <label kind="synchronisation">finished[part]?</label>
  </transition>
  <transition source="Pausing" target="Pausing">
    <label kind="guard">cur != -1</label>
    <label kind="synchronisation">preempt[cur]!</label>
    <label kind="assignment">cur = -1</label>
  </transition>
  <transition source="Pausing" target="Asleep">
    <label kind="guard">cur == -1</label>
  </transition>
  <transition source="Pausing" target="Pausing">
    <label kind="synchronisation">ready[part]?</label>
  </transition>
  <transition source="Pausing" target="Pausing">
    <label kind="synchronisation">finished[part]?</label>
    <label kind="assignment">cur = -1</label>
  </transition>
  <readhint array="is_ready" base="off" count="nt"/>
</template>
)XML";

int main() {
  // One partition with two tasks; hyperperiod 24 ticks.
  sa::NetworkBuilder NB;
  if (Error E = NB.addGlobals(models::globalDeclsSource(2, 1, 0))) {
    std::fprintf(stderr, "error: %s\n", E.message().c_str());
    return 1;
  }

  Result<std::unique_ptr<models::ModelLibrary>> Lib =
      models::ModelLibrary::create(NB.globalDecls());
  if (!Lib.ok()) {
    std::fprintf(stderr, "error: %s\n", Lib.error().message().c_str());
    return 1;
  }

  // Translate the custom scheduler from its XML form.
  Result<std::unique_ptr<sa::Template>> RR =
      configio::parseTemplateXml(RoundRobinXml, NB.globalDecls());
  if (!RR.ok()) {
    std::fprintf(stderr, "translation error: %s\n",
                 RR.error().message().c_str());
    return 1;
  }
  std::printf("translated template '%s': %zu locations, %zu edges\n",
              (*RR)->name().c_str(), (*RR)->locations().size(),
              (*RR)->edges().size());

  // Two equal tasks that each need 6 ticks every 24.
  for (int64_t G = 0; G < 2; ++G) {
    auto R = NB.addInstance((*Lib)->task(),
                            G == 0 ? "taskA" : "taskB",
                            {{"gid", {G}},
                             {"part", {0}},
                             {"wcet", {6}},
                             {"period", {24}},
                             {"deadline", {24}},
                             {"priority", {1}},
                             {"n_in", {0}},
                             {"in_links", {0}}});
    if (!R.ok()) {
      std::fprintf(stderr, "error: %s\n", R.error().message().c_str());
      return 1;
    }
  }
  if (auto R = NB.addInstance(**RR, "rr",
                              {{"part", {0}},
                               {"off", {0}},
                               {"nt", {2}},
                               {"q", {2}}});
      !R.ok()) {
    std::fprintf(stderr, "error: %s\n", R.error().message().c_str());
    return 1;
  }
  if (auto R = NB.addInstance((*Lib)->coreScheduler(), "cs",
                              {{"nw", {1}},
                               {"w_start", {0}},
                               {"w_end", {24}},
                               {"w_part", {0}},
                               {"hyper", {24}}});
      !R.ok()) {
    std::fprintf(stderr, "error: %s\n", R.error().message().c_str());
    return 1;
  }

  Result<std::unique_ptr<sa::Network>> Net = NB.finish();
  if (!Net.ok()) {
    std::fprintf(stderr, "error: %s\n", Net.error().message().c_str());
    return 1;
  }
  (*Net)->Meta["horizon"] = 24;

  nsa::Simulator Sim(**Net);
  nsa::SimResult R = Sim.run();
  if (!R.ok()) {
    std::fprintf(stderr, "simulation error: %s\n", R.Error.c_str());
    return 1;
  }

  std::printf("\nround-robin dispatch trace (quantum = 2):\n");
  for (const nsa::Event &E : R.Events) {
    std::string Chan = (*Net)->channelIdName(E.Channel);
    if (Chan.rfind("exec", 0) == 0 || Chan.rfind("preempt", 0) == 0 ||
        Chan.rfind("finished", 0) == 0)
      std::printf("  t=%-3lld %s\n", static_cast<long long>(E.Time),
                  Chan.c_str());
  }
  return 0;
}
