//===- examples/sensitivity.cpp - Parametric sensitivity demo -------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// Asks the engine *how far* a schedulable configuration is from the edge
// instead of the paper's binary verdict: per-task WCET slack (with its
// certificate pair), period and window-offset feasibility intervals, and
// the uniform-inflation breakdown frontier — each computed by monotone
// binary search driving the early-exit simulator as an oracle.
//
//   $ ./sensitivity [seed] [--param wcet|period|offset|frontier|all]
//                   [--tolerance TICKS] [--workers N] [--budget-ms MS]
//                   [--report-out FILE] [--trace-out FILE]
//
// --param restricts the query families (default all). --tolerance sets
// the convergence granularity of the tick-valued searches (default 1:
// adjacent certificates). --workers fans the (task, parameter) queries
// out over N threads; the printed summary is byte-identical for every N.
//
//===----------------------------------------------------------------------===//

#include "analysis/Sensitivity.h"
#include "gen/Workload.h"
#include "obs/Metrics.h"
#include "obs/RunReport.h"
#include "obs/Span.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

using namespace swa;

int main(int argc, char **argv) {
  uint64_t Seed = 7;
  const char *Param = "all";
  cfg::TimeValue Tolerance = 1;
  int Workers = 1;
  int64_t BudgetMs = -1;
  const char *TraceOut = nullptr, *ReportOut = nullptr;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--param") == 0 && I + 1 < argc)
      Param = argv[++I];
    else if (std::strcmp(argv[I], "--tolerance") == 0 && I + 1 < argc)
      Tolerance = std::strtoll(argv[++I], nullptr, 10);
    else if (std::strcmp(argv[I], "--workers") == 0 && I + 1 < argc)
      Workers = std::atoi(argv[++I]);
    else if (std::strcmp(argv[I], "--budget-ms") == 0 && I + 1 < argc)
      BudgetMs = std::strtoll(argv[++I], nullptr, 10);
    else if (std::strcmp(argv[I], "--trace-out") == 0 && I + 1 < argc)
      TraceOut = argv[++I];
    else if (std::strcmp(argv[I], "--report-out") == 0 && I + 1 < argc)
      ReportOut = argv[++I];
    else
      Seed = std::strtoull(argv[I], nullptr, 10);
  }

  if (TraceOut || ReportOut)
    obs::setEnabled(true);
  if (TraceOut)
    obs::setSpansEnabled(true);

  // A generated task set at moderate utilization, bound windows kept —
  // the sensitivity questions only make sense on a concrete layout.
  gen::IndustrialParams Params;
  Params.Modules = 2;
  Params.CoresPerModule = 2;
  Params.PartitionsPerCore = 2;
  Params.CoreUtilization = 0.45;
  Params.Seed = Seed;
  cfg::Config Config = gen::industrialConfig(Params);

  std::printf("config: %zu partitions, %d tasks, %zu messages on %zu "
              "cores, L=%lld\n",
              Config.Partitions.size(), Config.numTasks(),
              Config.Messages.size(), Config.Cores.size(),
              static_cast<long long>(Config.hyperperiod()));

  analysis::SensitivityOptions Opts;
  Opts.ToleranceTicks = Tolerance;
  Opts.Workers = Workers;
  Opts.ProbeBudgetMs = BudgetMs;
  if (std::strcmp(Param, "all") != 0) {
    Opts.QueryWcet = std::strcmp(Param, "wcet") == 0;
    Opts.QueryPeriod = std::strcmp(Param, "period") == 0;
    Opts.QueryOffset = std::strcmp(Param, "offset") == 0;
    Opts.QueryFrontier = std::strcmp(Param, "frontier") == 0;
    if (!Opts.QueryWcet && !Opts.QueryPeriod && !Opts.QueryOffset &&
        !Opts.QueryFrontier) {
      std::fprintf(stderr,
                   "error: --param must be wcet|period|offset|frontier|all, "
                   "got '%s'\n",
                   Param);
      return 1;
    }
  }

  auto T0 = std::chrono::steady_clock::now();
  Result<analysis::SensitivityResult> Res =
      analysis::analyzeSensitivity(Config, Opts);
  double ElapsedSec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  if (!Res.ok()) {
    std::fprintf(stderr, "error: %s\n", Res.error().message().c_str());
    return 1;
  }

  std::printf("\n%s", Res->summary().c_str());
  std::printf("\n%d probes in %.3f s (%.0f probes/s, workers=%d)\n",
              Res->TotalProbes, ElapsedSec,
              ElapsedSec > 0 ? Res->TotalProbes / ElapsedSec : 0.0,
              Workers);

  if (TraceOut) {
    std::ofstream OS(TraceOut);
    if (!OS) {
      std::fprintf(stderr, "error: cannot write %s\n", TraceOut);
      return 1;
    }
    obs::writeChromeTrace(OS);
    std::printf("trace: %zu spans -> %s (load in chrome://tracing or "
                "ui.perfetto.dev)\n",
                obs::spanCount(), TraceOut);
  }
  if (ReportOut) {
    obs::RunReport Report("sensitivity");
    analysis::fillSensitivityReport(Report, *Res, ElapsedSec);
    std::string Err;
    if (!Report.writeFile(ReportOut, Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    std::printf("report: %s\n", ReportOut);
  }

  if (!Res->BaseDecided)
    return 2;
  return 0;
}
