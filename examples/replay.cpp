//===- examples/replay.cpp - Deterministic reproducer replay ---------------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// Re-executes a reproducer bundle written by difftest_campaign (or by the
// fault-injection tests): parses the embedded configuration, re-runs the
// recorded oracle pair — or re-injects the recorded fault — and checks
// that the same expected/actual verdict pair comes back. Every engine in
// the repo is deterministic, so a bundle that replayed once replays
// forever.
//
//   $ ./replay repro-0.xml
//
// Exit status: 0 when the recorded discrepancy reproduced, 1 on error,
// 2 when the replay no longer reproduces it (e.g. after an engine fix).
//
//===----------------------------------------------------------------------===//

#include "difftest/Reproducer.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace swa;

int main(int argc, char **argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: replay <reproducer.xml>\n");
    return 1;
  }
  std::ifstream In(argv[1]);
  if (!In) {
    std::fprintf(stderr, "replay: cannot open '%s'\n", argv[1]);
    return 1;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();

  Result<difftest::Reproducer> Bundle =
      difftest::parseReproducerXml(Buf.str());
  if (!Bundle.ok()) {
    std::fprintf(stderr, "replay: %s\n",
                 Bundle.error().message().c_str());
    return 1;
  }

  std::printf("replaying %s: pair=%s seed=%llu%s\n", argv[1],
              difftest::oraclePairName(Bundle->Pair),
              static_cast<unsigned long long>(Bundle->Seed),
              Bundle->HasFault ? " (with fault injection)" : "");

  Result<difftest::ReplayOutcome> Out =
      difftest::replayReproducer(*Bundle);
  if (!Out.ok()) {
    std::fprintf(stderr, "replay: %s\n", Out.error().message().c_str());
    return 1;
  }

  std::printf("  recorded: expected=\"%s\" actual=\"%s\"\n",
              Bundle->Expected.c_str(), Bundle->Actual.c_str());
  std::printf("  replayed: expected=\"%s\" actual=\"%s\"\n",
              Out->Expected.c_str(), Out->Actual.c_str());
  if (!Out->Detail.empty())
    std::printf("  detail:   %s\n", Out->Detail.c_str());
  if (Out->Reproduced) {
    std::printf("  => reproduced deterministically\n");
    return 0;
  }
  std::printf("  => did NOT reproduce\n");
  return 2;
}
