//===- examples/profile_run.cpp - Observability-driven profiling run -------===//
//
// Part of the swa-sched project.
//
//===----------------------------------------------------------------------===//
//
// Runs one analysis pipeline (build -> compile -> simulate -> analyze)
// with the observability layer on and prints where the time and the
// events went: the hierarchical phase tree (with its coverage of total
// wall time), the engine counters sorted by magnitude, and the histogram
// summaries. Optionally streams every simulator step as JSONL.
//
//   $ ./profile_run [--jobs N] [--jsonl FILE] [--json]
//                   [--trace-out FILE] [--report-out FILE]
//
//   --jobs N          target jobs per hyperperiod of the generated
//                     industrial-style configuration (default 1000)
//   --jsonl FILE      stream action/delay/variable-write events to FILE
//   --json            dump the metrics report as JSON instead of text
//   --trace-out FILE  record phase spans and write a chrome://tracing
//                     (Perfetto) timeline
//   --report-out FILE write a machine-readable obs::RunReport JSON
//
//===----------------------------------------------------------------------===//

#include "analysis/Analyzer.h"
#include "gen/Workload.h"
#include "obs/Metrics.h"
#include "obs/RunReport.h"
#include "obs/Span.h"
#include "obs/Timer.h"
#include "obs/TraceSink.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace swa;

int main(int argc, char **argv) {
  int64_t Jobs = 1000;
  std::string JsonlPath, TracePath, ReportPath;
  bool JsonReport = false;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--jobs") == 0 && I + 1 < argc) {
      char *End = nullptr;
      Jobs = std::strtoll(argv[++I], &End, 10);
      if (End == argv[I] || *End != '\0' || Jobs <= 0) {
        std::fprintf(stderr, "error: --jobs expects a positive integer, got '%s'\n",
                     argv[I]);
        return 1;
      }
    } else if (std::strcmp(argv[I], "--jsonl") == 0 && I + 1 < argc) {
      JsonlPath = argv[++I];
    } else if (std::strcmp(argv[I], "--json") == 0) {
      JsonReport = true;
    } else if (std::strcmp(argv[I], "--trace-out") == 0 && I + 1 < argc) {
      TracePath = argv[++I];
    } else if (std::strcmp(argv[I], "--report-out") == 0 && I + 1 < argc) {
      ReportPath = argv[++I];
    } else {
      std::fprintf(stderr,
                   "usage: profile_run [--jobs N] [--jsonl FILE] [--json] "
                   "[--trace-out FILE] [--report-out FILE]\n");
      return 1;
    }
  }

  obs::setEnabled(true);
  if (!TracePath.empty())
    obs::setSpansEnabled(true);

  cfg::Config Config = gen::industrialConfigWithJobs(Jobs, /*Seed=*/1);
  std::printf("configuration: %d tasks, %zu partitions, %zu cores, "
              "%lld jobs/hyperperiod\n",
              Config.numTasks(), Config.Partitions.size(),
              Config.Cores.size(),
              static_cast<long long>(Config.jobCount()));

  nsa::SimOptions Opt;
  Opt.MetricsEnabled = true;
  std::ofstream JsonlFile;
  obs::JsonlSink Sink(JsonlFile);
  if (!JsonlPath.empty()) {
    JsonlFile.open(JsonlPath);
    if (!JsonlFile) {
      std::fprintf(stderr, "error: cannot open '%s'\n", JsonlPath.c_str());
      return 1;
    }
    Opt.Sink = &Sink;
  }

  auto T0 = std::chrono::steady_clock::now();
  Result<analysis::AnalyzeOutcome> Out =
      analysis::analyzeConfiguration(Config, Opt);
  auto WallNs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - T0)
          .count());
  if (!Out.ok()) {
    std::fprintf(stderr, "error: %s\n", Out.error().message().c_str());
    return 1;
  }

  std::printf("run: %s\n", Out->Sim.summary().c_str());
  std::printf("verdict: %s (%lld missed of %lld jobs)\n\n",
              Out->Analysis.Schedulable ? "schedulable" : "unschedulable",
              static_cast<long long>(Out->Analysis.MissedJobs),
              static_cast<long long>(Out->Analysis.TotalJobs));

  if (JsonReport) {
    obs::report(std::cout, /*Json=*/true);
  } else {
    obs::PhaseTree::Node Phases = obs::PhaseTree::mergedRoot();
    uint64_t PhaseNs = obs::PhaseTree::totalNanos(Phases);
    std::printf("phase tree (total %.3f ms, %.1f%% of %.3f ms wall):\n",
                static_cast<double>(PhaseNs) / 1e6,
                WallNs ? 100.0 * static_cast<double>(PhaseNs) /
                             static_cast<double>(WallNs)
                       : 0.0,
                static_cast<double>(WallNs) / 1e6);
    obs::PhaseTree::render(std::cout, Phases);

    auto Counters = obs::Registry::global().counterValues();
    std::sort(Counters.begin(), Counters.end(),
              [](const auto &A, const auto &B) {
                return A.second > B.second;
              });
    std::printf("\ntop counters:\n");
    size_t Shown = 0;
    for (const auto &[Name, Value] : Counters) {
      if (Shown++ >= 12)
        break;
      std::printf("  %-36s %llu\n", Name.c_str(),
                  static_cast<unsigned long long>(Value));
    }
    std::printf("\nhistograms:\n");
    for (const auto &[Name, H] : obs::Registry::global().histograms())
      std::printf("  %-36s n=%llu min=%llu mean=%.1f max=%llu\n",
                  Name.c_str(),
                  static_cast<unsigned long long>(H.count()),
                  static_cast<unsigned long long>(H.min()), H.mean(),
                  static_cast<unsigned long long>(H.max()));
  }

  if (!TracePath.empty()) {
    std::ofstream OS(TracePath);
    if (!OS) {
      std::fprintf(stderr, "error: cannot open '%s'\n", TracePath.c_str());
      return 1;
    }
    obs::writeChromeTrace(OS);
    std::printf("\ntrace: %zu spans -> %s (load in chrome://tracing or "
                "ui.perfetto.dev)\n",
                obs::spanCount(), TracePath.c_str());
  }
  if (!ReportPath.empty()) {
    obs::RunReport Report("profile_run");
    Report.addCount("jobs.target", static_cast<uint64_t>(Jobs));
    Report.addCount("schedulable", Out->Analysis.Schedulable ? 1 : 0);
    Report.addCount("jobs.missed",
                    static_cast<uint64_t>(Out->Analysis.MissedJobs));
    Report.addCount("jobs.total",
                    static_cast<uint64_t>(Out->Analysis.TotalJobs));
    Report.addStat("wall_ms", static_cast<double>(WallNs) / 1e6);
    std::string Err;
    if (!Report.writeFile(ReportPath, Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    std::printf("report: %s\n", ReportPath.c_str());
  }

  if (!JsonlPath.empty())
    std::printf("\nJSONL events: %llu lines -> %s\n",
                static_cast<unsigned long long>(Sink.linesWritten()),
                JsonlPath.c_str());
  return Out->Analysis.Schedulable ? 0 : 2;
}
